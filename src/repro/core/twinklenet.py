"""Twinklenet: the low-interaction multi-protocol IP-aliasing honeypot.

Python port of the paper's Go implementation (Appendix D).  A single
instance handles packets for any number of non-contiguous subnets and
addresses (IP aliasing) and interacts per Table 7:

=============== =============================== ===============================
protocol        request                         response
=============== =============================== ===============================
ICMPv6          Echo request                    Echo reply
TCP             SYN to an open port             complete the three-way
                                                handshake, capture the first
                                                data, close with FIN
TCP             other segment to an open port   RST
NTP (UDP)       any client packet               kiss-of-death (RefID "DENY")
DNS (UDP)       any query                       SERVFAIL
=============== =============================== ===============================

Anything else — closed ports, unclaimed addresses — is silently captured
but never answered, preserving darknet semantics.

Two entry points share one state machine:

* :meth:`Twinklenet.handle` — the per-packet reference path;
* :meth:`Twinklenet.handle_batch` — the columnar kernel: whole reply
  categories (echo replies, SERVFAIL, kiss-of-death, SYN-ACK floods) are
  produced as vectorized blocks, and the TCP session table is a
  struct-of-arrays (:class:`SessionTable`) looked up by composite key.
  The batch path is reply-, counter- and state-identical to the scalar
  path (``tests/core/test_react_batch.py`` pins this with randomized
  traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.core.honeyprefix import Honeyprefix
from repro.net.addr import (
    aggregate,
    group_ids_cols,
    lookup_pos_u64,
    mask_u64,
    member_mask_cols,
    member_mask_u64,
    split_u64,
)
from repro.net.batch import PacketBatch, WireBatch, WireBuilder, as_wire
from repro.obs import get_registry
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    Packet,
    TcpFlags,
    icmp_echo_reply,
    icmp_echo_request_mask,
    tcp_segment,
    tcp_syn_mask,
    udp_datagram,
)

#: NTP kiss-of-death payload: stratum 0 with reference identifier "DENY".
NTP_KOD_PAYLOAD = b"\x24\x00\x00\x00DENY"
#: DNS header flag bytes with QR=1, RCODE=2 (SERVFAIL).
DNS_SERVFAIL_PAYLOAD = b"\x80\x02"
#: Zeroed QDCOUNT/ANCOUNT/NSCOUNT/ARCOUNT words of the SERVFAIL header.
_DNS_ZERO_COUNTS = b"\x00\x00" * 4

#: UDP ports Twinklenet understands as DNS / NTP.
DNS_PORT = 53
NTP_PORT = 123

_U64 = 0xFFFFFFFFFFFFFFFF
#: ins value larger than any live session's — argmin sentinel.
_INS_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass
class TcpSession:
    """State of one half-open/open TCP conversation."""

    peer: int
    peer_port: int
    local: int
    local_port: int
    state: str = "syn_received"
    first_data: bytes | None = None
    opened_at: float = 0.0
    last_seen: float = 0.0


@dataclass
class TwinklenetConfig:
    """Which honeyprefixes (and their bindings) this instance serves."""

    honeyprefixes: list[Honeyprefix] = field(default_factory=list)
    #: TCP sessions idle longer than this (by packet timestamp) are evicted
    #: — a SYN-only sweep must not grow the session table forever.
    session_timeout: float = 600.0
    #: Hard cap on concurrently tracked TCP sessions; the oldest-inserted
    #: session is dropped to admit a new one once the cap is reached.
    max_sessions: int = 4096


class SessionTable:
    """Struct-of-arrays TCP session table.

    Sessions live in parallel numpy columns over *slots* (``live`` marks
    occupancy, freed slots are recycled).  The composite key — peer
    address, peer port, local address, local port, spread over six u64
    columns — is resolved two ways:

    * scalar ops go through a side dict mapping the key tuple to its slot
      (O(1), keeps the per-packet reference path fast);
    * :meth:`match` resolves a whole column of keys at once by lexsorting
      table + query keys together (the sorted-packed-key/searchsorted
      lookup, via :func:`~repro.net.addr.group_ids_cols`).

    ``ins`` is a monotonically increasing insertion sequence; it survives
    re-SYN overwrites, so oldest-``ins`` eviction reproduces the scalar
    dict's oldest-inserted (FIFO) ``max_sessions`` recycling exactly.
    """

    _KEY_NAMES = ("peer_hi", "peer_lo", "peer_port",
                  "local_hi", "local_lo", "local_port")

    def __init__(self, capacity: int = 64):
        self._cap = capacity
        self.peer_hi = np.zeros(capacity, dtype=np.uint64)
        self.peer_lo = np.zeros(capacity, dtype=np.uint64)
        self.peer_port = np.zeros(capacity, dtype=np.uint64)
        self.local_hi = np.zeros(capacity, dtype=np.uint64)
        self.local_lo = np.zeros(capacity, dtype=np.uint64)
        self.local_port = np.zeros(capacity, dtype=np.uint64)
        self.established = np.zeros(capacity, dtype=bool)
        self.opened_at = np.zeros(capacity, dtype=np.float64)
        self.last_seen = np.zeros(capacity, dtype=np.float64)
        self.ins = np.zeros(capacity, dtype=np.uint64)
        self.live = np.zeros(capacity, dtype=bool)
        self._keys: list[tuple | None] = [None] * capacity
        self._index: dict[tuple, int] = {}
        self._free: list[int] = []
        self._high = 0
        self._size = 0
        self._ins_next = 0

    def __len__(self) -> int:
        return self._size

    # -- slot management -------------------------------------------------

    def _grow(self) -> None:
        new_cap = self._cap * 2
        for name in self._KEY_NAMES + ("established", "opened_at",
                                       "last_seen", "ins", "live"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[:self._cap] = old
            setattr(self, name, grown)
        self._keys.extend([None] * (new_cap - self._cap))
        self._cap = new_cap

    def _alloc(self) -> int:
        if self._free:
            return self._free.pop()
        if self._high == self._cap:
            self._grow()
        slot = self._high
        self._high += 1
        return slot

    # -- scalar ops ------------------------------------------------------

    def slot_of(self, key: tuple) -> int | None:
        return self._index.get(key)

    def insert(self, key: tuple, ts: float) -> int:
        slot = self._alloc()
        (self.peer_hi[slot], self.peer_lo[slot], self.peer_port[slot],
         self.local_hi[slot], self.local_lo[slot],
         self.local_port[slot]) = key
        self.established[slot] = False
        self.opened_at[slot] = ts
        self.last_seen[slot] = ts
        self.ins[slot] = self._ins_next
        self._ins_next += 1
        self.live[slot] = True
        self._keys[slot] = key
        self._index[key] = slot
        self._size += 1
        return slot

    def reopen(self, slot: int, ts: float) -> None:
        """Re-SYN on a tracked key: fresh state, same table position."""
        self.established[slot] = False
        self.opened_at[slot] = ts
        self.last_seen[slot] = ts

    def touch(self, slot: int, ts: float) -> None:
        self.last_seen[slot] = ts

    def establish(self, slot: int) -> None:
        self.established[slot] = True

    def remove(self, slot: int) -> None:
        key = self._keys[slot]
        del self._index[key]
        self._keys[slot] = None
        self.live[slot] = False
        self._free.append(slot)
        self._size -= 1

    def bulk_remove(self, slots: np.ndarray) -> None:
        """Remove many live slots at once (columns vectorized, dict
        upkeep at C speed)."""
        slot_list = slots.tolist()
        index = self._index
        keys = self._keys
        for slot in slot_list:
            del index[keys[slot]]
            keys[slot] = None
        self.live[slots] = False
        self._free.extend(slot_list)
        self._size -= len(slot_list)

    def oldest_slot(self) -> int:
        """The live slot with the smallest insertion sequence."""
        high = self._high
        ins = np.where(self.live[:high], self.ins[:high], _INS_SENTINEL)
        return int(np.argmin(ins))

    def oldest_slots(self, k: int) -> np.ndarray:
        """The ``k`` oldest live slots, oldest first."""
        high = self._high
        if k >= self._size:
            slots = np.nonzero(self.live[:high])[0]
            return slots[np.argsort(self.ins[slots], kind="stable")]
        ins = np.where(self.live[:high], self.ins[:high], _INS_SENTINEL)
        part = np.argpartition(ins, k - 1)[:k]
        return part[np.argsort(ins[part], kind="stable")]

    def sweep(self, now: float, timeout: float) -> int:
        """Evict every live session idle strictly longer than ``timeout``;
        returns the eviction count."""
        high = self._high
        stale = self.live[:high] & ((now - self.last_seen[:high]) > timeout)
        slots = np.nonzero(stale)[0]
        if len(slots):
            self.bulk_remove(slots)
        return len(slots)

    def session_at(self, slot: int) -> TcpSession:
        return TcpSession(
            peer=(int(self.peer_hi[slot]) << 64) | int(self.peer_lo[slot]),
            peer_port=int(self.peer_port[slot]),
            local=(int(self.local_hi[slot]) << 64) | int(self.local_lo[slot]),
            local_port=int(self.local_port[slot]),
            state="established" if self.established[slot] else "syn_received",
            opened_at=float(self.opened_at[slot]),
            last_seen=float(self.last_seen[slot]),
        )

    def items(self) -> Iterator[tuple[tuple, TcpSession]]:
        """(key, session) pairs in insertion order (the dict-view order)."""
        high = self._high
        slots = np.nonzero(self.live[:high])[0]
        for slot in slots[np.argsort(self.ins[slots], kind="stable")].tolist():
            yield self._keys[slot], self.session_at(slot)

    # -- batch ops -------------------------------------------------------

    def _key_cols(self, slots: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(getattr(self, name)[slots] for name in self._KEY_NAMES)

    def match(self, cols: tuple[np.ndarray, ...]) -> np.ndarray:
        """Slot of each query key (columns in ``_KEY_NAMES`` order), -1 on
        miss."""
        n_query = len(cols[0])
        out = np.full(n_query, -1, dtype=np.int64)
        if self._size == 0 or n_query == 0:
            return out
        live_slots = np.nonzero(self.live[:self._high])[0]
        # Single-column pre-filter: a key can only match if its probed
        # address (the most discriminating component) is in the table at
        # all — scanner floods probe fresh addresses, so this usually
        # empties the query before the six-column sort.
        cand = np.isin(np.asarray(cols[4], dtype=np.uint64),
                       self.local_lo[live_slots])
        if not cand.any():
            return out
        sub = np.nonzero(cand)[0]
        table_cols = self._key_cols(live_slots)
        all_cols = [np.concatenate([t, np.asarray(q, dtype=np.uint64)[sub]])
                    for t, q in zip(table_cols, cols)]
        ids, n_groups = group_ids_cols(all_cols)
        slot_of_group = np.full(n_groups, -1, dtype=np.int64)
        slot_of_group[ids[:len(live_slots)]] = live_slots
        out[sub] = slot_of_group[ids[len(live_slots):]]
        return out

    def local_lo_overlap(self, lo: np.ndarray) -> bool:
        """Whether any of the given local-address low halves is tracked —
        a cheap single-column necessary condition for any key match."""
        if self._size == 0:
            return False
        live = np.nonzero(self.live[:self._high])[0]
        return bool(np.isin(lo, self.local_lo[live]).any())

    def advance_ins(self, n: int) -> None:
        """Consume ``n`` insertion-sequence values without inserting —
        stand-in for sessions that were inserted and evicted again within
        a single bulk update."""
        self._ins_next += n

    def bulk_reopen(self, slots: np.ndarray, ts: np.ndarray) -> None:
        self.established[slots] = False
        self.opened_at[slots] = ts
        self.last_seen[slots] = ts

    def bulk_insert(self, cols: tuple[np.ndarray, ...],
                    ts: np.ndarray) -> None:
        """Insert new keys (caller guarantees absent and under the cap) in
        the given order — the order defines their insertion sequence."""
        n = len(ts)
        slots = np.asarray([self._alloc() for _ in range(n)], dtype=np.int64)
        for name, col in zip(self._KEY_NAMES, cols):
            getattr(self, name)[slots] = col
        self.established[slots] = False
        self.opened_at[slots] = ts
        self.last_seen[slots] = ts
        self.ins[slots] = np.arange(self._ins_next, self._ins_next + n,
                                    dtype=np.uint64)
        self._ins_next += n
        self.live[slots] = True
        keys = zip(cols[0].tolist(), cols[1].tolist(), cols[2].tolist(),
                   cols[3].tolist(), cols[4].tolist(), cols[5].tolist())
        for key, slot in zip(keys, slots.tolist()):
            self._keys[slot] = key
            self._index[key] = slot
        self._size += n


class Twinklenet:
    """The responder.  Feed packets in via :meth:`handle` (or whole columns
    via :meth:`handle_batch`); responses are emitted through the
    ``transmit`` callback (typically an
    :class:`~repro.net.iface.Interface`'s transmit)."""

    def __init__(
        self,
        config: TwinklenetConfig,
        transmit: Callable[[Packet], None] | None = None,
    ):
        self.config = config
        self._transmit = transmit or (lambda pkt: None)
        self._transmit_batch: Callable[[WireBatch], None] | None = None
        self._table = SessionTable()
        self.sessions_completed: list[TcpSession] = []
        self.sessions_evicted = 0
        self.rx_count = 0
        self.tx_count = 0
        self._last_sweep = float("-inf")
        # Truncation-keyed honeyprefix index; rebuilt lazily when the
        # config's honeyprefix list grows (deploys append to it).
        self._owner_index: dict[tuple[int, int], tuple[int, Honeyprefix]] = {}
        self._owner_lengths: list[int] = []
        self._owner_cols: dict[int, tuple] = {}
        self._hp_pos: dict[int, int] = {}
        self._indexed_count = -1
        registry = get_registry()
        self._m_rx = registry.counter("twinklenet.rx")
        self._m_opened = registry.counter("twinklenet.sessions.opened")
        self._m_evicted = registry.counter("twinklenet.sessions.evicted")
        self._m_completed = registry.counter("twinklenet.sessions.completed")
        self._m_torn_down = registry.counter("twinklenet.sessions.torn_down")
        self._m_reply_icmp = registry.counter("twinklenet.replies.icmp")
        self._m_reply_tcp = registry.counter("twinklenet.replies.tcp")
        self._m_reply_dns = registry.counter("twinklenet.replies.dns")
        self._m_reply_ntp = registry.counter("twinklenet.replies.ntp")

    @property
    def _sessions(self) -> dict[tuple[int, int, int, int], TcpSession]:
        """Dict view of the session table (reference/test surface).

        Keyed ``(peer, peer_port, local, local_port)`` in insertion order,
        exactly the dict the scalar implementation used to keep directly.
        """
        return {
            ((key[0] << 64) | key[1], key[2], (key[3] << 64) | key[4], key[5]):
                session
            for key, session in self._table.items()
        }

    def set_transmit(self, transmit: Callable[[Packet], None]) -> None:
        self._transmit = transmit

    def set_transmit_batch(
            self, transmit: Callable[[WireBatch], None]) -> None:
        """Columnar transmit: :meth:`handle_batch` hands its whole reply
        batch to this callback instead of materializing per-packet."""
        self._transmit_batch = transmit

    def _send(self, pkt: Packet) -> None:
        self.tx_count += 1
        self._transmit(pkt)

    def _rebuild_owner_index(self) -> None:
        self._owner_index = {}
        lengths: set[int] = set()
        for pos, hp in enumerate(self.config.honeyprefixes):
            key = (hp.prefix.length, hp.prefix.network)
            self._owner_index.setdefault(key, (pos, hp))
            lengths.add(hp.prefix.length)
        self._owner_lengths = sorted(lengths)
        self._indexed_count = len(self.config.honeyprefixes)
        self._hp_pos = {id(hp): pos
                        for pos, hp in enumerate(self.config.honeyprefixes)}
        # Columnar twin of the index, for the batch owner lookup: per
        # length, the truncated networks as (hi, lo) columns + positions.
        self._owner_cols = {}
        for length in self._owner_lengths:
            entries = [(net, pos)
                       for (ln, net), (pos, _hp) in self._owner_index.items()
                       if ln == length]
            hi, lo = split_u64(net for net, _ in entries)
            pos_arr = np.asarray([p for _, p in entries], dtype=np.int64)
            self._owner_cols[length] = (hi, lo, pos_arr)

    def _owner(self, dst: int) -> Honeyprefix | None:
        """Honeyprefix serving ``dst``, by truncation-keyed dict lookup.

        One dict probe per distinct deployed prefix length (a handful:
        honeyprefixes are /48s and longer) replaces the linear scan over
        every honeyprefix.  When several nested prefixes cover ``dst``, the
        one listed first in the config wins, matching the original scan.
        """
        if len(self.config.honeyprefixes) != self._indexed_count:
            self._rebuild_owner_index()
        best: tuple[int, Honeyprefix] | None = None
        for length in self._owner_lengths:
            entry = self._owner_index.get((length, aggregate(dst, length)))
            if entry is not None and (best is None or entry[0] < best[0]):
                best = entry
        return best[1] if best else None

    def _owner_pos_batch(self, dst_hi: np.ndarray,
                         dst_lo: np.ndarray) -> np.ndarray:
        """Config position of the owning honeyprefix per row, -1 when
        unowned — the columnar :meth:`_owner` (first-listed wins)."""
        if len(self.config.honeyprefixes) != self._indexed_count:
            self._rebuild_owner_index()
        sentinel = np.iinfo(np.int64).max
        best = np.full(len(dst_hi), sentinel, dtype=np.int64)
        for length in self._owner_lengths:
            set_hi, set_lo, set_pos = self._owner_cols[length]
            hi, lo = mask_u64(dst_hi, dst_lo, length)
            pos = lookup_pos_u64(hi, lo, set_hi, set_lo, set_pos)
            hit = pos >= 0
            best[hit] = np.minimum(best[hit], pos[hit])
        best[best == sentinel] = -1
        return best

    def responds(self, address: int, proto: int, port: int | None) -> bool:
        """Responsiveness oracle over all served honeyprefixes."""
        hp = self._owner(address)
        return hp is not None and hp.responds(address, proto, port)

    def note_dark(self, n: int) -> None:
        """Account ``n`` packets that were received but provably could not
        elicit a reply (the columnar fast path skips materializing them)."""
        self.rx_count += n
        self._m_rx.inc(n)

    def handle(self, pkt: Packet) -> None:
        """Process one incoming packet, possibly emitting responses."""
        self.rx_count += 1
        self._m_rx.inc()
        hp = self._owner(pkt.dst)
        if hp is None:
            return
        if pkt.proto == ICMPV6:
            self._handle_icmp(pkt, hp)
        elif pkt.proto == TCP:
            self._handle_tcp(pkt, hp)
        elif pkt.proto == UDP:
            self._handle_udp(pkt, hp)

    # -- ICMP ------------------------------------------------------------

    def _handle_icmp(self, pkt: Packet, hp: Honeyprefix) -> None:
        if pkt.is_icmp_echo_request and hp.responds(pkt.dst, ICMPV6, None):
            self._m_reply_icmp.inc()
            self._send(icmp_echo_reply(pkt))

    # -- TCP -------------------------------------------------------------

    def _evict_stale_sessions(self, now: float) -> None:
        """Drop sessions idle longer than the configured timeout.

        Driven by packet timestamps and amortized: a full sweep runs at
        most once per timeout interval, so per-packet cost stays O(1).
        """
        timeout = self.config.session_timeout
        if now - self._last_sweep < timeout:
            return
        self._last_sweep = now
        evicted = self._table.sweep(now, timeout)
        self.sessions_evicted += evicted
        self._m_evicted.inc(evicted)

    @staticmethod
    def _session_key(src: int, sport: int, dst: int, dport: int) -> tuple:
        return ((src >> 64) & _U64, src & _U64, sport,
                (dst >> 64) & _U64, dst & _U64, dport)

    def _tcp_step(self, ts: float, key: tuple, flags: int, payload: bytes,
                  seq: int, ack: int) -> tuple | None:
        """One TCP state-machine step; returns the reply's (flags, seq,
        ack) or None.  Shared verbatim by the scalar path and the batch
        kernel's mixed-segment fallback — there is exactly one state
        machine."""
        table = self._table
        slot = table.slot_of(key)
        if flags & TcpFlags.SYN and not flags & TcpFlags.ACK:
            if slot is None:
                if len(table) >= self.config.max_sessions:
                    # Table full: recycle the oldest-inserted session (a
                    # SYN-only scanner never touches a session twice, so
                    # insertion order is idle order).
                    table.remove(table.oldest_slot())
                    self.sessions_evicted += 1
                    self._m_evicted.inc()
                table.insert(key, ts)
            else:
                table.reopen(slot, ts)
            self._m_opened.inc()
            self._m_reply_tcp.inc()
            return (TcpFlags.SYN | TcpFlags.ACK, 0, seq + 1)
        if slot is None:
            # Mid-stream segment with no session: RST per Table 7.
            self._m_reply_tcp.inc()
            return (TcpFlags.RST, ack, 0)
        table.touch(slot, ts)
        if not table.established[slot] and flags & TcpFlags.ACK:
            table.establish(slot)
        if table.established[slot] and payload:
            # Capture the first data, then close gracefully with FIN.
            session = table.session_at(slot)
            session.state = "closing"
            session.first_data = payload
            self._m_completed.inc()
            self._m_reply_tcp.inc()
            self.sessions_completed.append(session)
            table.remove(slot)
            return (TcpFlags.FIN | TcpFlags.ACK, 1, seq + len(payload))
        if flags & (TcpFlags.FIN | TcpFlags.RST):
            # Peer teardown: forget the session.  A FIN gets its ACK; an
            # RST is dropped silently.
            table.remove(slot)
            self._m_torn_down.inc()
            if flags & TcpFlags.FIN and not flags & TcpFlags.RST:
                self._m_reply_tcp.inc()
                return (TcpFlags.ACK, 1, seq + 1)
        return None

    def _handle_tcp(self, pkt: Packet, hp: Honeyprefix) -> None:
        self._evict_stale_sessions(pkt.timestamp)
        if not hp.responds(pkt.dst, TCP, pkt.dport):
            return  # closed port: darknet silence
        key = self._session_key(pkt.src, pkt.sport, pkt.dst, pkt.dport)
        reply = self._tcp_step(pkt.timestamp, key, pkt.flags, pkt.payload,
                               pkt.seq, pkt.ack)
        if reply is not None:
            rflags, rseq, rack = reply
            self._send(tcp_segment(
                pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                rflags, seq=rseq, ack=rack,
            ))

    # -- UDP -------------------------------------------------------------

    def _handle_udp(self, pkt: Packet, hp: Honeyprefix) -> None:
        if not hp.responds(pkt.dst, UDP, pkt.dport):
            return
        if pkt.dport == DNS_PORT:
            # SERVFAIL instead of implementing a resolver an attacker could
            # abuse for reflection.  The reply is a well-formed 12-byte DNS
            # header: TXID (zero-padded when the query is shorter than two
            # bytes), SERVFAIL flags, and zeroed section counts.
            txid = pkt.payload[:2].ljust(2, b"\x00")
            payload = txid + DNS_SERVFAIL_PAYLOAD + _DNS_ZERO_COUNTS
            self._m_reply_dns.inc()
            self._send(udp_datagram(
                pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport, payload
            ))
        elif pkt.dport == NTP_PORT:
            self._m_reply_ntp.inc()
            self._send(udp_datagram(
                pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                NTP_KOD_PAYLOAD,
            ))
        # Other UDP ports bound in future configs: responsive but mute.

    # -- columnar kernels ------------------------------------------------

    def handle_batch(self, batch: PacketBatch | WireBatch,
                     owner_hint: Honeyprefix | None = None) -> WireBatch:
        """Process a whole batch; returns the reply batch (row order =
        input row order, matching the per-packet reference exactly).

        Accepts a probe :class:`PacketBatch` (the telescope fast path) or a
        full :class:`WireBatch` (handshake/payload traffic, e.g. from
        tests).  Dark rows cost only their share of the vectorized masks —
        nothing is materialized per packet on the all-SYN hot path.

        ``owner_hint``: a honeyprefix the caller guarantees owns every row
        (the telescope slices traffic per deployed /48 before dispatching
        here); skips the per-row owner lookup.
        """
        wire = as_wire(batch)
        n = len(wire)
        self.rx_count += n
        self._m_rx.inc(n)
        out = WireBuilder()
        if n:
            if owner_hint is not None:
                if len(self.config.honeyprefixes) != self._indexed_count:
                    self._rebuild_owner_index()
                owner = np.full(n, self._hp_pos[id(owner_hint)],
                                dtype=np.int64)
            else:
                owner = self._owner_pos_batch(wire.dst_hi, wire.dst_lo)
            if (owner >= 0).any():
                self._react_icmp_batch(wire, owner, out)
                self._react_udp_batch(wire, owner, out)
                self._react_tcp_batch(wire, owner, out)
        replies = out.build()
        if len(replies):
            self.tx_count += len(replies)
            if self._transmit_batch is not None:
                self._transmit_batch(replies)
            else:
                for pkt in replies.to_packets():
                    self._transmit(pkt)
        return replies

    def _react_icmp_batch(self, wire: WireBatch, owner: np.ndarray,
                          out: WireBuilder) -> None:
        req = icmp_echo_request_mask(wire.proto, wire.sport) & (owner >= 0)
        if not req.any():
            return
        ok = np.zeros(len(wire), dtype=bool)
        for pos in np.unique(owner[req]).tolist():
            hp = self.config.honeyprefixes[pos]
            rows = np.nonzero(req & (owner == pos))[0]
            if hp.config.aliased:
                # Aliased prefixes answer ICMP everywhere they own.
                ok[rows] = True
            else:
                set_hi, set_lo = hp.icmp_address_columns()
                hit = member_mask_u64(wire.dst_hi[rows], wire.dst_lo[rows],
                                      set_hi, set_lo)
                ok[rows[hit]] = True
        idx = np.nonzero(ok)[0]
        if len(idx) == 0:
            return
        self._m_reply_icmp.inc(len(idx))
        out.append_block(
            idx, wire.ts[idx],
            wire.dst_hi[idx], wire.dst_lo[idx],
            wire.src_hi[idx], wire.src_lo[idx],
            ICMPV6, int(IcmpType.ECHO_REPLY), wire.dport[idx],
            payload_id=out.translate_ids(wire.payloads, wire.payload_id[idx]),
        )

    def _react_udp_batch(self, wire: WireBatch, owner: np.ndarray,
                         out: WireBuilder) -> None:
        udp = (wire.proto == np.uint8(UDP)) & (owner >= 0)
        if not udp.any():
            return
        bound = np.zeros(len(wire), dtype=bool)
        for pos in np.unique(owner[udp]).tolist():
            hp = self.config.honeyprefixes[pos]
            set_hi, set_lo, set_ports = hp.binding_columns(UDP)
            if len(set_hi) == 0:
                continue
            rows = np.nonzero(udp & (owner == pos))[0]
            hit = member_mask_cols(
                (wire.dst_hi[rows], wire.dst_lo[rows], wire.dport[rows]),
                (set_hi, set_lo, set_ports))
            bound[rows[hit]] = True
        dns = np.nonzero(bound & (wire.dport == np.uint16(DNS_PORT)))[0]
        if len(dns):
            # Vectorized payload selection: one SERVFAIL per distinct query
            # payload (probe batches carry a single constant, so this loop
            # runs once).
            self._m_reply_dns.inc(len(dns))
            pids = wire.payload_id[dns]
            pid_out = np.empty(len(dns), dtype=np.int32)
            for pid in np.unique(pids).tolist():
                query = b"" if pid < 0 else wire.payloads[pid]
                txid = query[:2].ljust(2, b"\x00")
                reply = txid + DNS_SERVFAIL_PAYLOAD + _DNS_ZERO_COUNTS
                pid_out[pids == pid] = out.intern(reply)
            out.append_block(
                dns, wire.ts[dns],
                wire.dst_hi[dns], wire.dst_lo[dns],
                wire.src_hi[dns], wire.src_lo[dns],
                UDP, wire.dport[dns], wire.sport[dns],
                payload_id=pid_out,
            )
        ntp = np.nonzero(bound & (wire.dport == np.uint16(NTP_PORT)))[0]
        if len(ntp):
            self._m_reply_ntp.inc(len(ntp))
            out.append_block(
                ntp, wire.ts[ntp],
                wire.dst_hi[ntp], wire.dst_lo[ntp],
                wire.src_hi[ntp], wire.src_lo[ntp],
                UDP, wire.dport[ntp], wire.sport[ntp],
                payload_id=out.intern(NTP_KOD_PAYLOAD),
            )

    def _react_tcp_batch(self, wire: WireBatch, owner: np.ndarray,
                         out: WireBuilder) -> None:
        """The TCP kernel: eviction-sweep segmentation around the
        struct-of-arrays session table.

        Every owned TCP row advances the sweep clock (exactly as every
        scalar ``_handle_tcp`` call does), so the row sequence is cut at
        sweep fire points and processed segment by segment; within a
        segment the table state is stable and the all-SYN case — probe
        traffic — vectorizes fully.
        """
        tcp_rows = np.nonzero((wire.proto == np.uint8(TCP)) & (owner >= 0))[0]
        if len(tcp_rows) == 0:
            return
        ts = wire.ts[tcp_rows]
        # Eligibility: an exact (address, port) binding on the owner.
        elig = np.zeros(len(tcp_rows), dtype=bool)
        sub_owner = owner[tcp_rows]
        for pos in np.unique(sub_owner).tolist():
            hp = self.config.honeyprefixes[pos]
            set_hi, set_lo, set_ports = hp.binding_columns(TCP)
            if len(set_hi) == 0:
                continue
            rows = np.nonzero(sub_owner == pos)[0]
            sel = tcp_rows[rows]
            hit = member_mask_cols(
                (wire.dst_hi[sel], wire.dst_lo[sel], wire.dport[sel]),
                (set_hi, set_lo, set_ports))
            elig[rows[hit]] = True
        timeout = self.config.session_timeout
        pos = 0
        scan = 0
        n = len(tcp_rows)
        while True:
            # Next sweep fire point: first unchecked row whose timestamp is
            # a full timeout past the last sweep — the exact per-packet
            # gate, evaluated as one vector comparison.  Each row consumes
            # its gate check, so scanning resumes after the fire row.
            due = (ts[scan:] - self._last_sweep) >= timeout
            k = int(np.argmax(due)) if len(due) else 0
            if len(due) == 0 or not due[k]:
                self._process_tcp_segment(wire, tcp_rows, elig, pos, n, out)
                return
            fire = scan + k
            self._process_tcp_segment(wire, tcp_rows, elig, pos, fire, out)
            now = float(ts[fire])
            self._last_sweep = now
            evicted = self._table.sweep(now, timeout)
            self.sessions_evicted += evicted
            self._m_evicted.inc(evicted)
            pos = fire
            scan = fire + 1

    def _process_tcp_segment(self, wire: WireBatch, tcp_rows: np.ndarray,
                             elig: np.ndarray, a: int, b: int,
                             out: WireBuilder) -> None:
        if a >= b:
            return
        idx = tcp_rows[a:b][elig[a:b]]
        if len(idx) == 0:
            return
        if tcp_syn_mask(wire.flags[idx]).all():
            self._syn_segment(wire, idx, out)
        else:
            self._fallback_rows(wire, idx, out)

    def _syn_segment(self, wire: WireBatch, idx: np.ndarray,
                     out: WireBuilder) -> None:
        """All-SYN segment (the probe hot path), fully vectorized.

        Replies are one SYN-ACK per row regardless of table state; the
        table update groups rows by session key — a re-SYN within the
        segment lands on its first occurrence's table position with its
        last occurrence's timestamps, exactly the scalar overwrite
        semantics.  At the ``max_sessions`` cap, each new key recycles the
        globally-oldest live session and reopens never change insertion
        order, so the evicted set is exactly the ``m + n_new - cap``
        oldest — evicted in bulk here.  Only when one of those victims is
        itself a key this segment references does the scalar row/eviction
        interleaving matter, and the segment recursively halves until the
        entanglement is isolated in a chunk small enough for the per-row
        fallback.
        """
        cols = (wire.src_hi[idx], wire.src_lo[idx],
                wire.sport[idx].astype(np.uint64),
                wire.dst_hi[idx], wire.dst_lo[idx],
                wire.dport[idx].astype(np.uint64))
        ts_seg = wire.ts[idx]
        cap = self.config.max_sessions
        # Flood fast path: when the probed addresses are pairwise distinct
        # and none is currently tracked, every key is distinct and absent
        # (two single-column sorts prove it) — skip the six-column
        # grouping and match sorts and go straight to the bulk insert.
        if (len(np.unique(cols[4])) == len(idx)
                and not self._table.local_lo_overlap(cols[4])):
            self._insert_only_segment(wire, idx, cols, ts_seg, cap, out)
            return
        ids, n_groups = group_ids_cols(cols)
        arange = np.arange(len(idx), dtype=np.int64)
        first = np.full(n_groups, len(idx), dtype=np.int64)
        np.minimum.at(first, ids, arange)
        last = np.zeros(n_groups, dtype=np.int64)
        np.maximum.at(last, ids, arange)
        rep_cols = tuple(c[first] for c in cols)
        slots = self._table.match(rep_cols)
        new = slots < 0
        n_new = int(new.sum())
        n_evict = len(self._table) + n_new - cap
        flood = False
        if n_evict > 0:
            if n_new > cap:
                if not (n_new == n_groups == len(idx)):
                    # A matched or repeated key among segment-scale
                    # evictions: row order decides reopen vs re-insert.
                    self._syn_split_or_fallback(wire, idx, out)
                    return
                # Flood overflow: every key distinct and absent.  The
                # FIFO wipes every existing session, then the first
                # n_new - cap inserts of the segment itself; only the
                # last cap keys are still resident at the end, carrying
                # the insertion sequence the scalar loop would have left.
                self._table.bulk_remove(
                    self._table.oldest_slots(len(self._table)))
                self._table.advance_ins(n_new - cap)
                self._table.bulk_insert(tuple(c[-cap:] for c in cols),
                                        ts_seg[-cap:])
                flood = True
            else:
                victims = self._table.oldest_slots(n_evict)
                if bool(np.isin(victims, slots[~new]).any()):
                    # A session due for eviction is also re-SYNed by this
                    # segment; whether its row lands before (reopen) or
                    # after (re-insert) its eviction depends on row
                    # order.
                    self._syn_split_or_fallback(wire, idx, out)
                    return
                self._table.bulk_remove(victims)
            self.sessions_evicted += n_evict
            self._m_evicted.inc(n_evict)
        if not flood:
            ts_last = ts_seg[last]
            if n_new < n_groups:
                self._table.bulk_reopen(slots[~new], ts_last[~new])
            if n_new:
                order = np.argsort(first[new], kind="stable")
                sel = np.nonzero(new)[0][order]
                self._table.bulk_insert(tuple(c[sel] for c in rep_cols),
                                        ts_last[sel])
        self._m_opened.inc(len(idx))
        self._m_reply_tcp.inc(len(idx))
        out.append_block(
            idx, ts_seg,
            wire.dst_hi[idx], wire.dst_lo[idx],
            wire.src_hi[idx], wire.src_lo[idx],
            TCP, wire.dport[idx], wire.sport[idx],
            flags=int(TcpFlags.SYN | TcpFlags.ACK),
            seq=0, ack=wire.seq[idx] + 1,
        )

    def _insert_only_segment(self, wire: WireBatch, idx: np.ndarray,
                             cols: tuple[np.ndarray, ...], ts_seg: np.ndarray,
                             cap: int, out: WireBuilder) -> None:
        """All-SYN segment of pairwise-distinct, untracked keys: a pure
        insert stream.  Eviction victims (the FIFO head) can never be
        segment keys, so the bulk update is order-exact by construction."""
        table = self._table
        n = len(idx)
        n_evict = len(table) + n - cap
        if n_evict > 0:
            if n > cap:
                # Segment-scale flood: everything resident is wiped, and
                # the first n - cap inserts of the segment evict each
                # other; only the last cap keys remain, carrying the
                # insertion sequence the scalar loop would have left.
                table.bulk_remove(table.oldest_slots(len(table)))
                table.advance_ins(n - cap)
                table.bulk_insert(tuple(c[-cap:] for c in cols),
                                  ts_seg[-cap:])
            else:
                table.bulk_remove(table.oldest_slots(n_evict))
                table.bulk_insert(cols, ts_seg)
            self.sessions_evicted += n_evict
            self._m_evicted.inc(n_evict)
        else:
            table.bulk_insert(cols, ts_seg)
        self._m_opened.inc(n)
        self._m_reply_tcp.inc(n)
        out.append_block(
            idx, ts_seg,
            wire.dst_hi[idx], wire.dst_lo[idx],
            wire.src_hi[idx], wire.src_lo[idx],
            TCP, wire.dport[idx], wire.sport[idx],
            flags=int(TcpFlags.SYN | TcpFlags.ACK),
            seq=0, ack=wire.seq[idx] + 1,
        )

    def _syn_split_or_fallback(self, wire: WireBatch, idx: np.ndarray,
                               out: WireBuilder) -> None:
        """Order-entangled all-SYN segment: processing the two halves in
        sequence is row-order exact, and each half re-runs the vectorized
        kernel with its own guards — halving repeats until the
        entanglement is isolated in a chunk small enough for the per-row
        fallback."""
        if len(idx) < 64:
            self._fallback_rows(wire, idx, out)
            return
        mid = len(idx) // 2
        self._syn_segment(wire, idx[:mid], out)
        self._syn_segment(wire, idx[mid:], out)

    def _fallback_rows(self, wire: WireBatch, idx: np.ndarray,
                       out: WireBuilder) -> None:
        """Row-exact fallback: mixed-flag or cap-bound segments run the
        shared scalar state machine row by row (rare — probe traffic is
        all-SYN and far below the cap)."""
        for i in idx.tolist():
            ts = float(wire.ts[i])
            src_hi, src_lo = int(wire.src_hi[i]), int(wire.src_lo[i])
            dst_hi, dst_lo = int(wire.dst_hi[i]), int(wire.dst_lo[i])
            sport, dport = int(wire.sport[i]), int(wire.dport[i])
            key = (src_hi, src_lo, sport, dst_hi, dst_lo, dport)
            reply = self._tcp_step(ts, key, int(wire.flags[i]),
                                   wire.payload_at(i), int(wire.seq[i]),
                                   int(wire.ack[i]))
            if reply is not None:
                rflags, rseq, rack = reply
                out.append_row(
                    int(i), ts,
                    src=(dst_hi << 64) | dst_lo, dst=(src_hi << 64) | src_lo,
                    proto=TCP, sport=dport, dport=sport,
                    flags=int(rflags), seq=rseq, ack=rack,
                )
