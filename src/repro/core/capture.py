"""Packet capture into analysis-ready columnar records.

``PacketCapturer`` is the telescope's packet-capture stage: it appends each
packet's analysis-relevant fields to growing column buffers (timestamps,
src/dst split into uint64 halves, protocol, ports) and can simultaneously
mirror full packets to a capture file.  ``to_records()`` freezes the buffers
into :class:`repro.analysis.records.PacketRecords` for the pipeline.
"""

from __future__ import annotations

import os

from repro.net.packet import Packet
from repro.net.pcapstore import PacketWriter
from repro.obs import get_registry

_U64 = 0xFFFFFFFFFFFFFFFF


class PacketCapturer:
    """Columnar packet capture with optional file mirroring."""

    def __init__(self, name: str = "capture",
                 mirror_path: str | os.PathLike | None = None):
        self.name = name
        self._ts: list[float] = []
        self._src_hi: list[int] = []
        self._src_lo: list[int] = []
        self._dst_hi: list[int] = []
        self._dst_lo: list[int] = []
        self._proto: list[int] = []
        self._sport: list[int] = []
        self._dport: list[int] = []
        self._writer = PacketWriter(mirror_path) if mirror_path else None
        self._packet_metric = get_registry().counter(
            f"telescope.{name}.packets"
        )

    def __len__(self) -> int:
        return len(self._ts)

    def capture(self, pkt: Packet) -> None:
        """Record one packet."""
        self._packet_metric.inc()
        self._ts.append(pkt.timestamp)
        self._src_hi.append((pkt.src >> 64) & _U64)
        self._src_lo.append(pkt.src & _U64)
        self._dst_hi.append((pkt.dst >> 64) & _U64)
        self._dst_lo.append(pkt.dst & _U64)
        self._proto.append(pkt.proto)
        self._sport.append(pkt.sport)
        self._dport.append(pkt.dport)
        if self._writer is not None:
            self._writer.write(pkt)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def to_records(self):
        """Freeze into :class:`repro.analysis.records.PacketRecords`."""
        # Imported here to keep core importable without the analysis stack.
        from repro.analysis.records import PacketRecords

        return PacketRecords.from_columns(
            ts=self._ts,
            src_hi=self._src_hi, src_lo=self._src_lo,
            dst_hi=self._dst_hi, dst_lo=self._dst_lo,
            proto=self._proto, sport=self._sport, dport=self._dport,
        )
