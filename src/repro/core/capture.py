"""Packet capture into analysis-ready columnar records.

``PacketCapturer`` is the telescope's packet-capture stage: it appends each
packet's analysis-relevant fields to growing column buffers (timestamps,
src/dst split into uint64 halves, protocol, ports) and can simultaneously
mirror full packets to a capture file.  The columnar fast path,
:meth:`PacketCapturer.capture_batch`, appends whole numpy chunks instead of
scalar fields.  ``to_records()`` freezes both — chunks and scalar tails, in
arrival order — into :class:`repro.analysis.records.PacketRecords`.

The capturer is also the *provenance boundary*: a batch arriving with the
ground-truth ``origin`` column (the emitting agent's id) has that column
stripped from the analysis-facing chunk — a real telescope cannot see who
sent a packet — and the origin-bearing batch is retained in a sidecar,
frozen by :meth:`PacketCapturer.to_truth` into
:class:`repro.analysis.groundtruth.GroundTruthRecords` for detection
scoring.
"""

from __future__ import annotations

import os

import numpy as np

from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.net.pcapstore import PacketWriter
from repro.obs import get_registry

_U64 = 0xFFFFFFFFFFFFFFFF


class PacketCapturer:
    """Columnar packet capture with optional file mirroring."""

    def __init__(self, name: str = "capture",
                 mirror_path: str | os.PathLike | None = None):
        self.name = name
        #: Frozen numpy chunks (from ``capture_batch`` and scalar flushes),
        #: in arrival order.
        self._chunks: list[PacketBatch] = []
        #: Origin-bearing batches retained at the provenance boundary, in
        #: arrival order (only batches that arrived with ``origin`` set).
        self._truth_chunks: list[PacketBatch] = []
        self._ts: list[float] = []
        self._src_hi: list[int] = []
        self._src_lo: list[int] = []
        self._dst_hi: list[int] = []
        self._dst_lo: list[int] = []
        self._proto: list[int] = []
        self._sport: list[int] = []
        self._dport: list[int] = []
        self._writer = PacketWriter(mirror_path) if mirror_path else None
        self._packet_metric = get_registry().counter(
            f"telescope.{name}.packets"
        )

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks) + len(self._ts)

    def capture(self, pkt: Packet) -> None:
        """Record one packet."""
        self._packet_metric.inc()
        self._ts.append(pkt.timestamp)
        self._src_hi.append((pkt.src >> 64) & _U64)
        self._src_lo.append(pkt.src & _U64)
        self._dst_hi.append((pkt.dst >> 64) & _U64)
        self._dst_lo.append(pkt.dst & _U64)
        self._proto.append(pkt.proto)
        self._sport.append(pkt.sport)
        self._dport.append(pkt.dport)
        if self._writer is not None:
            self._writer.write(pkt)

    def _flush_scalars(self) -> None:
        """Freeze any scalar tail into a chunk so ordering is preserved
        when scalar and batch captures interleave."""
        if not self._ts:
            return
        self._chunks.append(PacketBatch.from_columns(
            self._ts,
            self._src_hi, self._src_lo, self._dst_hi, self._dst_lo,
            self._proto, self._sport, self._dport,
        ))
        for col in (self._ts, self._src_hi, self._src_lo, self._dst_hi,
                    self._dst_lo, self._proto, self._sport, self._dport):
            col.clear()

    def capture_batch(self, batch: PacketBatch) -> None:
        """Record a whole columnar batch as one chunk (fast path)."""
        if len(batch) == 0:
            return
        self._packet_metric.inc(len(batch))
        self._flush_scalars()
        if batch.origin is not None:
            self._truth_chunks.append(batch)
        self._chunks.append(batch.drop_origin())
        if self._writer is not None:
            # Mirroring is inherently per-packet; materialize (slow path,
            # only paid when a capture file was requested).
            for pkt in batch.iter_packets():
                self._writer.write(pkt)

    # -- chunk transfer (shard merge + checkpoint restore) -----------------

    def mark(self) -> tuple[int, int]:
        """Freeze any scalar tail and return the current chunk high-water
        mark ``(chunks, truth_chunks)`` for a later :meth:`chunks_since`."""
        self._flush_scalars()
        return len(self._chunks), len(self._truth_chunks)

    def chunks_since(self, mark: tuple[int, int]) -> tuple[list, list]:
        """The (analysis, truth) chunks appended since ``mark`` — the
        per-agent capture delta a shard worker ships to the parent."""
        self._flush_scalars()
        return list(self._chunks[mark[0]:]), list(self._truth_chunks[mark[1]:])

    def extend_chunks(self, chunks, truth_chunks) -> None:
        """Append transferred chunks in arrival order (the receiving side
        of shard merging and checkpoint restore).  Does not advance the
        capture metrics counter: transferred rows were counted where they
        were captured."""
        self._flush_scalars()
        self._chunks.extend(chunks)
        self._truth_chunks.extend(truth_chunks)

    def reset_chunks(self) -> None:
        """Drop all buffered chunks (a shard worker's memory bound: once a
        day's deltas are shipped, the worker no longer needs them)."""
        self._flush_scalars()
        self._chunks.clear()
        self._truth_chunks.clear()

    def to_truth(self):
        """Freeze the provenance sidecar into
        :class:`repro.analysis.groundtruth.GroundTruthRecords`.

        Covers only the rows that arrived with an ``origin`` column (the
        columnar emission path); scalar captures — honeypot responses and
        hand-built packets — have no provenance and are not truth rows.
        """
        from repro.analysis.groundtruth import GroundTruthRecords

        return GroundTruthRecords.from_batches(self._truth_chunks)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def to_records(self):
        """Freeze into :class:`repro.analysis.records.PacketRecords`."""
        # Imported here to keep core importable without the analysis stack.
        from repro.analysis.records import PacketRecords

        if not self._chunks:
            return PacketRecords.from_columns(
                ts=self._ts,
                src_hi=self._src_hi, src_lo=self._src_lo,
                dst_hi=self._dst_hi, dst_lo=self._dst_lo,
                proto=self._proto, sport=self._sport, dport=self._dport,
            )
        self._flush_scalars()
        return PacketRecords.from_columns(
            ts=np.concatenate([c.ts for c in self._chunks]),
            src_hi=np.concatenate([c.src_hi for c in self._chunks]),
            src_lo=np.concatenate([c.src_lo for c in self._chunks]),
            dst_hi=np.concatenate([c.dst_hi for c in self._chunks]),
            dst_lo=np.concatenate([c.dst_lo for c in self._chunks]),
            proto=np.concatenate([c.proto for c in self._chunks]),
            sport=np.concatenate([c.sport for c in self._chunks]),
            dport=np.concatenate([c.dport for c in self._chunks]),
        )
