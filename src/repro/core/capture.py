"""Packet capture into analysis-ready columnar records.

``PacketCapturer`` is the telescope's packet-capture stage: it appends each
packet's analysis-relevant fields to growing column buffers (timestamps,
src/dst split into uint64 halves, protocol, ports) and can simultaneously
mirror full packets to a capture file.  The columnar fast path,
:meth:`PacketCapturer.capture_batch`, appends whole numpy chunks instead of
scalar fields.  ``to_records()`` freezes both — chunks and scalar tails, in
arrival order — into :class:`repro.analysis.records.PacketRecords`.

The capturer is also the *provenance boundary*: a batch arriving with the
ground-truth ``origin`` column (the emitting agent's id) has that column
stripped from the analysis-facing chunk — a real telescope cannot see who
sent a packet — and the origin-bearing batch is retained in a sidecar,
frozen by :meth:`PacketCapturer.to_truth` into
:class:`repro.analysis.groundtruth.GroundTruthRecords` for detection
scoring.

**Spill mode** bounds the capturer's memory: with a spill directory and a
byte budget configured (:meth:`PacketCapturer.enable_spill`), buffered
chunks exceeding the budget are sealed into atomic npz segment files on
disk — written tmp-then-rename with a per-file SHA-256 recorded in a
manifest, the same integrity conventions as the scenario cache
(:mod:`repro.exec.cache`) — and ``to_records()`` streams the segments back
one at a time into preallocated output columns instead of holding every
chunk and all eight full-size concatenated copies alive at once.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.net.batch import PacketBatch, WireBatch
from repro.net.packet import Packet
from repro.net.pcapstore import PacketWriter
from repro.obs import get_registry

_U64 = 0xFFFFFFFFFFFFFFFF

#: Capture column storage order (matches ``PacketRecords``' columns).
CAPTURE_COLUMNS = ("ts", "src_hi", "src_lo", "dst_hi", "dst_lo",
                   "proto", "sport", "dport")

_COLUMN_DTYPES = {
    "ts": np.float64,
    "src_hi": np.uint64, "src_lo": np.uint64,
    "dst_hi": np.uint64, "dst_lo": np.uint64,
    "proto": np.uint8, "sport": np.uint16, "dport": np.uint16,
}

#: Default spill byte budget: seal buffered chunks to disk past 64 MiB.
DEFAULT_SPILL_BUDGET = 64 * 1024 * 1024


def _batch_nbytes(batch: PacketBatch) -> int:
    size = sum(getattr(batch, col).nbytes for col in CAPTURE_COLUMNS)
    if batch.origin is not None:
        size += batch.origin.nbytes
    return size


def _sha256(path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for block in iter(lambda: stream.read(1024 * 1024), b""):
            digest.update(block)
    return digest.hexdigest()


class SpillIntegrityError(RuntimeError):
    """A spilled segment's bytes no longer match its manifest checksum."""


class ChunkSpill:
    """Sealed capture chunks as on-disk npz segments.

    Each :meth:`spill` call concatenates the handed-over batches (bounded
    by the capturer's byte budget) into one segment file, written
    atomically (tmp + ``os.replace``) with its SHA-256 recorded in a
    manifest json alongside — the :class:`~repro.exec.cache.ScenarioCache`
    integrity conventions.  :meth:`iter_batches` verifies each segment's
    checksum before deserializing and yields them in spill order, one at a
    time, so readers never hold more than one segment in memory.
    """

    def __init__(self, directory, name: str):
        self.directory = Path(directory)
        self.name = name
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segments: list[dict] = []
        self.rows = 0

    @property
    def manifest_path(self) -> Path:
        return self.directory / f"{self.name}.manifest.json"

    @property
    def segments(self) -> int:
        return len(self._segments)

    def spill(self, batches: list[PacketBatch]) -> int:
        """Seal ``batches`` into one segment file; returns rows written."""
        sealed = PacketBatch.concat(list(batches))
        if len(sealed) == 0:
            return 0
        filename = f"{self.name}.{len(self._segments):05d}.npz"
        path = self.directory / filename
        tmp = path.with_suffix(".npz.tmp")
        arrays = {col: getattr(sealed, col) for col in CAPTURE_COLUMNS}
        if sealed.origin is not None:
            arrays["origin"] = sealed.origin
        with open(tmp, "wb") as stream:
            np.savez(stream, **arrays)
        checksum = _sha256(tmp)
        os.replace(tmp, path)
        self._segments.append({
            "file": filename, "sha256": checksum, "rows": len(sealed),
        })
        self.rows += len(sealed)
        self._write_manifest()
        return len(sealed)

    def _write_manifest(self) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(
            {"name": self.name, "rows": self.rows,
             "segments": self._segments},
            indent=2, sort_keys=True))
        os.replace(tmp, self.manifest_path)

    def iter_batches(self):
        """Yield spilled segments in order, checksum-verified, one at a
        time."""
        for segment in self._segments:
            path = self.directory / segment["file"]
            if _sha256(path) != segment["sha256"]:
                raise SpillIntegrityError(
                    f"spill segment {path} failed its checksum")
            with np.load(path) as data:
                origin = data["origin"] if "origin" in data.files else None
                yield PacketBatch.from_columns(
                    *(data[col] for col in CAPTURE_COLUMNS), origin=origin)

    def clear(self) -> None:
        """Delete every segment (and the manifest); resets the spill."""
        for segment in self._segments:
            try:
                (self.directory / segment["file"]).unlink()
            except FileNotFoundError:
                pass
        try:
            self.manifest_path.unlink()
        except FileNotFoundError:
            pass
        self._segments = []
        self.rows = 0


class PacketCapturer:
    """Columnar packet capture with optional file mirroring and spill."""

    def __init__(self, name: str = "capture",
                 mirror_path: str | os.PathLike | None = None):
        self.name = name
        #: Frozen numpy chunks (from ``capture_batch`` and scalar flushes),
        #: in arrival order.
        self._chunks: list[PacketBatch] = []
        #: Origin-bearing batches retained at the provenance boundary, in
        #: arrival order (only batches that arrived with ``origin`` set).
        self._truth_chunks: list[PacketBatch] = []
        self._ts: list[float] = []
        self._src_hi: list[int] = []
        self._src_lo: list[int] = []
        self._dst_hi: list[int] = []
        self._dst_lo: list[int] = []
        self._proto: list[int] = []
        self._sport: list[int] = []
        self._dport: list[int] = []
        self._writer = PacketWriter(mirror_path) if mirror_path else None
        #: The last freeze's records: ``to_records`` consumes the chunk
        #: buffer (releasing per-chunk references), so repeated freezes
        #: serve — and later captures extend — this cached prefix.
        self._frozen = None
        self._spill: ChunkSpill | None = None
        self._truth_spill: ChunkSpill | None = None
        self._spill_budget = DEFAULT_SPILL_BUDGET
        self._buffered_bytes = 0
        self._packet_metric = get_registry().counter(
            f"telescope.{name}.packets"
        )

    def __len__(self) -> int:
        spilled = self._spill.rows if self._spill is not None else 0
        frozen = len(self._frozen) if self._frozen is not None else 0
        return (frozen + spilled + sum(len(c) for c in self._chunks)
                + len(self._ts))

    # -- spill configuration ----------------------------------------------

    def enable_spill(self, directory,
                     budget_bytes: int = DEFAULT_SPILL_BUDGET) -> None:
        """Seal buffered chunks to npz segments in ``directory`` whenever
        they exceed ``budget_bytes``; peak memory then tracks the budget,
        not the run length."""
        if budget_bytes <= 0:
            raise ValueError(
                f"spill budget must be positive, got {budget_bytes}")
        self._spill = ChunkSpill(directory, self.name)
        self._truth_spill = ChunkSpill(directory, f"{self.name}.truth")
        self._spill_budget = budget_bytes

    @property
    def spill_enabled(self) -> bool:
        return self._spill is not None

    @property
    def spilled_rows(self) -> int:
        return self._spill.rows if self._spill is not None else 0

    def _maybe_spill(self) -> None:
        if self._spill is None or self._buffered_bytes <= self._spill_budget:
            return
        self._flush_scalars()
        if self._chunks:
            self._spill.spill(self._chunks)
            self._chunks.clear()
        if self._truth_chunks:
            self._truth_spill.spill(self._truth_chunks)
            self._truth_chunks.clear()
        self._buffered_bytes = 0

    # -- capture ----------------------------------------------------------

    def capture(self, pkt: Packet) -> None:
        """Record one packet."""
        self._packet_metric.inc()
        self._ts.append(pkt.timestamp)
        self._src_hi.append((pkt.src >> 64) & _U64)
        self._src_lo.append(pkt.src & _U64)
        self._dst_hi.append((pkt.dst >> 64) & _U64)
        self._dst_lo.append(pkt.dst & _U64)
        self._proto.append(pkt.proto)
        self._sport.append(pkt.sport)
        self._dport.append(pkt.dport)
        if self._writer is not None:
            self._writer.write(pkt)

    def _flush_scalars(self) -> None:
        """Freeze any scalar tail into a chunk so ordering is preserved
        when scalar and batch captures interleave."""
        if not self._ts:
            return
        chunk = PacketBatch.from_columns(
            self._ts,
            self._src_hi, self._src_lo, self._dst_hi, self._dst_lo,
            self._proto, self._sport, self._dport,
        )
        self._chunks.append(chunk)
        self._buffered_bytes += _batch_nbytes(chunk)
        for col in (self._ts, self._src_hi, self._src_lo, self._dst_hi,
                    self._dst_lo, self._proto, self._sport, self._dport):
            col.clear()

    def capture_batch(self, batch: PacketBatch | WireBatch) -> None:
        """Record a whole columnar batch as one chunk (fast path).

        Accepts the eight capture columns as a :class:`PacketBatch`; a
        honeypot reply :class:`WireBatch` is captured through its capture
        columns (transport detail is not part of the record format).
        """
        if isinstance(batch, WireBatch):
            batch = batch.as_packet_batch()
        if len(batch) == 0:
            return
        self._packet_metric.inc(len(batch))
        self._flush_scalars()
        if batch.origin is not None:
            self._truth_chunks.append(batch)
            self._buffered_bytes += _batch_nbytes(batch)
        analysis = batch.drop_origin()
        self._chunks.append(analysis)
        self._buffered_bytes += _batch_nbytes(analysis)
        self._maybe_spill()
        if self._writer is not None:
            # Mirroring is inherently per-packet; materialize (slow path,
            # only paid when a capture file was requested).
            for pkt in batch.iter_packets():
                self._writer.write(pkt)

    # -- chunk transfer (shard merge + checkpoint restore) -----------------

    def mark(self) -> tuple[int, int]:
        """Freeze any scalar tail and return the current chunk high-water
        mark ``(chunks, truth_chunks)`` for a later :meth:`chunks_since`."""
        self._flush_scalars()
        return len(self._chunks), len(self._truth_chunks)

    def chunks_since(self, mark: tuple[int, int]) -> tuple[list, list]:
        """The (analysis, truth) chunks appended since ``mark`` — the
        per-agent capture delta a shard worker ships to the parent."""
        self._flush_scalars()
        return list(self._chunks[mark[0]:]), list(self._truth_chunks[mark[1]:])

    def extend_chunks(self, chunks, truth_chunks) -> None:
        """Append transferred chunks in arrival order (the receiving side
        of shard merging and checkpoint restore).  Does not advance the
        capture metrics counter: transferred rows were counted where they
        were captured."""
        self._flush_scalars()
        self._chunks.extend(chunks)
        self._truth_chunks.extend(truth_chunks)
        self._buffered_bytes += sum(_batch_nbytes(c) for c in chunks)
        self._buffered_bytes += sum(_batch_nbytes(c) for c in truth_chunks)
        self._maybe_spill()

    def reset_chunks(self) -> None:
        """Drop all buffered chunks (a shard worker's memory bound: once a
        day's deltas are shipped, the worker no longer needs them)."""
        self._flush_scalars()
        self._chunks.clear()
        self._truth_chunks.clear()
        self._buffered_bytes = 0

    def drain_day_records(self):
        """Freeze and drop everything buffered since the last drain.

        The streaming-analysis path: each day boundary converts the day's
        chunks into one :class:`~repro.analysis.records.PacketRecords`
        chunk for the online trackers and releases them, so a run's peak
        memory holds one day, not the horizon.  Ground-truth sidecars are
        dropped with the chunks (streaming runs carry events, not
        records).  Spill mode is unnecessary underneath this — the buffer
        never outlives a day.
        """
        from repro.analysis.records import PacketRecords

        self._flush_scalars()
        if not self._chunks:
            self._truth_chunks.clear()
            self._buffered_bytes = 0
            return PacketRecords.empty()
        total = sum(len(c) for c in self._chunks)
        out = {col: np.empty(total, dtype=dtype)
               for col, dtype in _COLUMN_DTYPES.items()}
        position = 0
        chunks = self._chunks
        for i in range(len(chunks)):
            chunk = chunks[i]
            chunks[i] = None
            size = len(chunk)
            for col in CAPTURE_COLUMNS:
                out[col][position:position + size] = getattr(chunk, col)
            position += size
        self._chunks = []
        self._truth_chunks.clear()
        self._buffered_bytes = 0
        return PacketRecords(**out)

    def to_truth(self):
        """Freeze the provenance sidecar into
        :class:`repro.analysis.groundtruth.GroundTruthRecords`.

        Covers only the rows that arrived with an ``origin`` column (the
        columnar emission path); scalar captures — honeypot responses and
        hand-built packets — have no provenance and are not truth rows.
        """
        from repro.analysis.groundtruth import GroundTruthRecords

        chunks = self._truth_chunks
        if self._truth_spill is not None and self._truth_spill.rows:
            chunks = list(self._truth_spill.iter_batches()) + chunks
        return GroundTruthRecords.from_batches(chunks)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def _consume_chunks(self):
        """Yield every analysis batch in arrival order — spilled segments
        re-read (and verified) one at a time, then in-memory chunks, each
        reference released as it is handed out.  The spill and the chunk
        buffer are empty afterwards."""
        if self._spill is not None and self._spill.rows:
            yield from self._spill.iter_batches()
            self._spill.clear()
        chunks = self._chunks
        self._chunks = []
        self._buffered_bytes = 0
        for i in range(len(chunks)):
            chunk = chunks[i]
            chunks[i] = None
            yield chunk

    def to_records(self):
        """Freeze into :class:`repro.analysis.records.PacketRecords`.

        Output columns are preallocated at the final size and filled
        chunk by chunk, with each chunk's (or spilled segment's) reference
        released as it is consumed — peak memory is one output copy plus
        one chunk, not the eight full-size concatenations plus every
        source chunk the naive ``np.concatenate`` construction held.  The
        chunk buffer is consumed into a cached frozen prefix, so repeated
        freezes (and captures after a freeze) remain valid; the truth
        sidecar is untouched.
        """
        # Imported here to keep core importable without the analysis stack.
        from repro.analysis.records import PacketRecords

        self._flush_scalars()
        spilled = self._spill.rows if self._spill is not None else 0
        if not spilled and not self._chunks:
            return (self._frozen if self._frozen is not None
                    else PacketRecords.empty())
        frozen = len(self._frozen) if self._frozen is not None else 0
        total = frozen + spilled + sum(len(c) for c in self._chunks)
        out = {col: np.empty(total, dtype=dtype)
               for col, dtype in _COLUMN_DTYPES.items()}
        position = 0
        if self._frozen is not None:
            for col in CAPTURE_COLUMNS:
                out[col][:frozen] = getattr(self._frozen, col)
            position = frozen
            self._frozen = None
        for chunk in self._consume_chunks():
            size = len(chunk)
            for col in CAPTURE_COLUMNS:
                out[col][position:position + size] = getattr(chunk, col)
            position += size
        self._frozen = PacketRecords(**out)
        return self._frozen
