"""Attraction/reaction feature vocabulary.

The paper denotes features with letter codes in §5.4/Figure 11:

====  ==========================================================
code  feature
====  ==========================================================
B     BGP announcement (the baseline trigger for every honeyprefix)
A     IP aliasing (entire prefix responsive)
I     ICMP responsiveness (individual IPs or aliased prefixes)
T     TCP open ports
U     UDP open ports
D     domain name (root AAAA record)
S     subdomain names (eTLD+2 AAAA records)
d     TLS certificate for the root domain
s     TLS certificates for subdomains
H     IPv6 hitlist inclusion
O     probes to non-responsive protocols/ports/addresses
====  ==========================================================
"""

from __future__ import annotations

import enum


class Feature(enum.Enum):
    """One attraction or reaction feature."""

    BGP = "bgp"
    ALIASED = "aliased"
    ICMP = "icmp"
    TCP = "tcp"
    UDP = "udp"
    DOMAIN = "domain"
    SUBDOMAIN = "subdomain"
    TLS_ROOT = "tls_root"
    TLS_SUB = "tls_sub"
    HITLIST = "hitlist"
    OTHER = "other"


#: Paper letter codes for rendering Figure 11-style labels.
FEATURE_CODES: dict[Feature, str] = {
    Feature.BGP: "B",
    Feature.ALIASED: "A",
    Feature.ICMP: "I",
    Feature.TCP: "T",
    Feature.UDP: "U",
    Feature.DOMAIN: "D",
    Feature.SUBDOMAIN: "S",
    Feature.TLS_ROOT: "d",
    Feature.TLS_SUB: "s",
    Feature.HITLIST: "H",
    Feature.OTHER: "O",
}


def combo_label(features: frozenset[Feature] | set[Feature]) -> str:
    """Render a feature combination as a Figure 11 x-axis label.

    Codes are emitted in the paper's order (uppercase triggers first, the
    lowercase TLS variants right after their DNS counterparts, O last).
    """
    order = [
        Feature.ICMP,
        Feature.TCP,
        Feature.UDP,
        Feature.DOMAIN,
        Feature.TLS_ROOT,
        Feature.SUBDOMAIN,
        Feature.TLS_SUB,
        Feature.HITLIST,
        Feature.ALIASED,
        Feature.BGP,
        Feature.OTHER,
    ]
    return "".join(FEATURE_CODES[f] for f in order if f in features)
