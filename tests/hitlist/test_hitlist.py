"""Tests for the hitlist prober and service."""

import pytest

from repro.hitlist.categories import HitlistCategory
from repro.hitlist.prober import CallableOracle, Prober
from repro.hitlist.service import HitlistService
from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6, TCP, UDP

ALIASED = IPv6Prefix.parse("2001:db8:aa::/48")
LIVE_WEB = IPv6Prefix.parse("2001:db8:1::/48").network | 7
LIVE_PING = IPv6Prefix.parse("2001:db8:2::/48").network | 1


class _Oracle:
    """Configurable fake telescope."""

    def __init__(self):
        self.dead: set[int] = set()

    def responds(self, addr, proto, port, at):
        if addr in self.dead:
            return False
        if addr in ALIASED:
            return proto == ICMPV6
        if addr == LIVE_WEB:
            return proto == TCP and port in (80, 443)
        if addr == LIVE_PING:
            return proto == ICMPV6
        return False


@pytest.fixture
def oracle():
    return _Oracle()


@pytest.fixture
def service(oracle):
    prober = Prober(oracle, rng=0)
    svc = HitlistService(prober, cycle_period=86_400.0)
    return svc


class TestProber:
    def test_probe_address(self, oracle):
        prober = Prober(oracle, rng=0)
        assert prober.probe_address(LIVE_PING, HitlistCategory.ICMP, 0.0)
        assert not prober.probe_address(LIVE_PING, HitlistCategory.TCP80, 0.0)
        assert prober.probe_address(LIVE_WEB, HitlistCategory.TCP80, 0.0)

    def test_probe_rejects_prefix_category(self, oracle):
        prober = Prober(oracle, rng=0)
        with pytest.raises(ValueError):
            prober.probe_address(1, HitlistCategory.ALIASED, 0.0)

    def test_detect_alias_true(self, oracle):
        prober = Prober(oracle, rng=0)
        assert prober.detect_alias(ALIASED, 0.0)

    def test_detect_alias_false(self, oracle):
        prober = Prober(oracle, rng=0)
        assert not prober.detect_alias(IPv6Prefix.parse("2001:db8:2::/48"),
                                       0.0)

    def test_probe_counter(self, oracle):
        prober = Prober(oracle, rng=0)
        prober.probe_address(LIVE_PING, HitlistCategory.ICMP, 0.0)
        prober.detect_alias(ALIASED, 0.0)
        assert prober.probe_count == 1 + prober.alias_probe_count


class TestServiceCompilation:
    def test_discovers_categories(self, service):
        service.add_candidate_source(
            lambda s, u: [LIVE_WEB, LIVE_PING]
        )
        entries = service.run_cycle(at=100.0)
        categories = {(e.category, e.address) for e in entries
                      if e.address is not None}
        assert (HitlistCategory.TCP80, LIVE_WEB) in categories
        assert (HitlistCategory.TCP443, LIVE_WEB) in categories
        assert (HitlistCategory.ICMP, LIVE_PING) in categories

    def test_aliased_detection_and_subsumption(self, service):
        service.add_prefix_source(lambda s, u: [ALIASED])
        service.add_candidate_source(
            lambda s, u: [ALIASED.network | 0x42]
        )
        entries = service.run_cycle(at=100.0)
        aliased = [e for e in entries
                   if e.category is HitlistCategory.ALIASED]
        assert [e.prefix for e in aliased] == [ALIASED]
        # No /64 inside the aliased /48 published, no address entries.
        assert not any(
            e.prefix is not None and e.prefix.length == 64 and
            ALIASED.contains_prefix(e.prefix)
            for e in entries
        )
        assert not any(
            e.address is not None and e.address in ALIASED for e in entries
        )

    def test_non_aliased_published(self, service):
        service.add_candidate_source(lambda s, u: [LIVE_PING])
        entries = service.run_cycle(at=100.0)
        assert any(e.category is HitlistCategory.NON_ALIASED for e in entries)

    def test_known_addresses_not_rediscovered(self, service):
        service.add_candidate_source(lambda s, u: [LIVE_PING])
        first = service.run_cycle(at=100.0)
        second = service.run_cycle(at=200.0)
        assert not any(
            e.address == LIVE_PING and not e.removed for e in second
        )

    def test_cycle_requires_forward_time(self, service):
        service.run_cycle(at=100.0)
        with pytest.raises(ValueError):
            service.run_cycle(at=100.0)


class TestRevalidation:
    def test_dead_entry_removed(self, service, oracle):
        service.add_candidate_source(
            lambda s, u: [LIVE_PING] if u <= 150.0 else []
        )
        service.run_cycle(at=100.0)
        oracle.dead.add(LIVE_PING)
        entries = service.run_cycle(at=200.0)
        removed = [e for e in entries if e.removed]
        assert [(e.category, e.address) for e in removed] == [
            (HitlistCategory.ICMP, LIVE_PING)
        ]

    def test_snapshot_respects_removal(self, service, oracle):
        service.add_candidate_source(
            lambda s, u: [LIVE_PING] if u <= 150.0 else []
        )
        service.run_cycle(at=100.0)
        before = service.snapshot_at(150.0)
        assert LIVE_PING in before.addresses[HitlistCategory.ICMP]
        oracle.dead.add(LIVE_PING)
        service.run_cycle(at=200.0)
        after = service.snapshot_at(250.0)
        assert LIVE_PING not in after.addresses.get(HitlistCategory.ICMP, set())

    def test_rediscovery_after_revival(self, service, oracle):
        service.add_candidate_source(lambda s, u: [LIVE_PING])
        service.run_cycle(at=100.0)
        oracle.dead.add(LIVE_PING)
        service.run_cycle(at=200.0)
        oracle.dead.clear()
        entries = service.run_cycle(at=300.0)
        assert any(
            e.address == LIVE_PING and not e.removed for e in entries
        )


class TestManualInsertion:
    def test_manual_entry_published(self, service):
        entry = service.insert_manual(HitlistCategory.ICMP, at=50.0,
                                      address=LIVE_PING)
        assert entry.manual
        assert service.entries_between(0.0, 60.0) == [entry]

    def test_manual_requires_exactly_one_target(self, service):
        with pytest.raises(ValueError):
            service.insert_manual(HitlistCategory.ICMP, at=0.0)
        with pytest.raises(ValueError):
            service.insert_manual(HitlistCategory.ICMP, at=0.0,
                                  address=1, prefix=ALIASED)

    def test_snapshot_includes_manual(self, service):
        service.insert_manual(HitlistCategory.UDP53, at=50.0, address=9)
        snap = service.snapshot_at(60.0)
        assert 9 in snap.addresses[HitlistCategory.UDP53]
