"""Chunked capture: ``capture_batch`` appends numpy chunks, ``to_records``
concatenates them in arrival order with any scalar captures interleaved."""

import numpy as np

from repro.core.capture import PacketCapturer
from repro.net.addr import IPv6Prefix
from repro.net.batch import PacketBatch
from repro.net.packet import icmp_echo_request
from repro.net.pcapstore import read_packets
from repro.obs.registry import MetricsRegistry, use_registry

PREFIX = IPv6Prefix.parse("2001:db8:50::/48")


def _packets(n, t0=0.0):
    return [icmp_echo_request(t0 + i, 0x2620 << 112 | i, PREFIX.network | i)
            for i in range(n)]


class TestChunkedCapture:
    def test_batch_then_records(self):
        capturer = PacketCapturer("t")
        capturer.capture_batch(PacketBatch.from_packets(_packets(5)))
        records = capturer.to_records()
        assert len(records) == 5
        assert np.array_equal(records.ts, np.arange(5.0))

    def test_interleaved_order_preserved(self):
        capturer = PacketCapturer("t")
        capturer.capture(_packets(1, t0=0.0)[0])
        capturer.capture_batch(PacketBatch.from_packets(_packets(3, t0=1.0)))
        capturer.capture(_packets(1, t0=4.0)[0])
        capturer.capture_batch(PacketBatch.from_packets(_packets(2, t0=5.0)))
        records = capturer.to_records()
        assert np.array_equal(records.ts, np.arange(7.0))

    def test_len_counts_chunks_and_scalars(self):
        capturer = PacketCapturer("t")
        capturer.capture_batch(PacketBatch.from_packets(_packets(3)))
        capturer.capture(_packets(1, t0=9.0)[0])
        assert len(capturer) == 4

    def test_empty_batch_is_noop(self):
        capturer = PacketCapturer("t")
        capturer.capture_batch(PacketBatch.empty())
        assert len(capturer) == 0
        assert len(capturer.to_records()) == 0

    def test_packet_metric_counts_batches(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            capturer = PacketCapturer("metered")
            capturer.capture_batch(PacketBatch.from_packets(_packets(4)))
            capturer.capture(_packets(1, t0=9.0)[0])
        assert registry.counter("telescope.metered.packets").value == 5

    def test_mirror_writes_batch_rows(self, tmp_path):
        path = tmp_path / "mirror.pkts"
        capturer = PacketCapturer("t", mirror_path=path)
        capturer.capture_batch(PacketBatch.from_packets(_packets(3)))
        capturer.close()
        mirrored = read_packets(path)
        assert [p.timestamp for p in mirrored] == [0.0, 1.0, 2.0]
