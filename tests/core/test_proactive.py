"""Tests for the proactive telescope orchestrator."""

import pytest

from repro._util import DAY
from repro.core.features import Feature
from repro.core.honeyprefix import standard_configs
from repro.core.proactive import MAX_SUBDOMAIN_CERTS, ProactiveTelescope
from repro.dns.registry import Registrar, TldRegistry
from repro.dns.resolver import Resolver
from repro.hitlist.categories import HitlistCategory
from repro.hitlist.prober import CallableOracle, Prober
from repro.hitlist.service import HitlistService
from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6, TCP, TcpFlags, icmp_echo_request, tcp_segment
from repro.routing.collectors import CollectorSystem
from repro.routing.rpki import RoaRegistry
from repro.routing.speaker import BgpSpeaker
from repro.tlsca.acme import AcmeClient
from repro.tlsca.ca import CertificateAuthority
from repro.tlsca.ctlog import CtLog

COVERING = IPv6Prefix.parse("2001:db8::/32")
SRC = IPv6Prefix.parse("2620:99::/32").network | 7


@pytest.fixture
def telescope():
    roa = RoaRegistry()
    collectors = CollectorSystem(rng=0, roa_registry=roa)
    speaker = BgpSpeaker(64500, collectors, roa)
    registrar = Registrar()
    for tld in ("com", "net", "org"):
        registrar.add_tld(TldRegistry(tld))
    resolver = Resolver([registrar])
    log = CtLog()
    ca = CertificateAuthority(ct_logs=[log])
    acme = AcmeClient(ca, registrar, resolver)
    tel = ProactiveTelescope("NT-A", COVERING, speaker, registrar, acme,
                             rng=5)
    prober = Prober(CallableOracle(tel.responds), rng=6)
    tel.hitlist = HitlistService(prober)
    return tel


@pytest.fixture
def configs():
    return {c.name: c for c in standard_configs()}


def _slot(i: int) -> IPv6Prefix:
    return COVERING.subnet_at(0x8000 + i, 48)


class TestDeploy:
    def test_bgp_feature_time_is_collector_visibility(self, telescope, configs):
        hp = telescope.deploy(configs["H_BGP1"], _slot(1), at=1000.0)
        t = hp.feature_time(Feature.BGP)
        assert t is not None and t > 1000.0

    def test_announce_fails_never_activates_bgp(self, telescope, configs):
        hp = telescope.deploy(configs["H_TCP"], _slot(2), at=1000.0)
        assert hp.feature_time(Feature.BGP) is None
        # But the route sits in the local RIB (BIRD had it configured).
        assert hp.announced_prefix in [
            r.prefix for r in telescope.speaker.local_rib.routes()
        ]

    def test_domains_registered_with_aaaa(self, telescope, configs):
        hp = telescope.deploy(configs["H_Com"], _slot(3), at=1000.0)
        assert len(hp.domain_targets) == 2
        for domain, target in hp.domain_targets.items():
            assert domain.endswith(".com")
            assert target in hp.prefix
            # web ports opened on AAAA targets
            assert hp.responds(target, TCP, 80)

    def test_subdomains_deployed(self, telescope, configs):
        hp = telescope.deploy(configs["H_Org/net"], _slot(4), at=1000.0)
        assert len(hp.subdomain_targets) == 374
        # subdomains only on the .net domain (the last registered)
        assert all(name.endswith(".net") for name in hp.subdomain_targets)

    def test_duplicate_slot_rejected(self, telescope, configs):
        telescope.deploy(configs["H_BGP1"], _slot(5), at=1000.0)
        with pytest.raises(ValueError):
            telescope.deploy(configs["H_BGP2"], _slot(5), at=2000.0)

    def test_outside_covering_rejected(self, telescope, configs):
        with pytest.raises(ValueError):
            telescope.deploy(configs["H_BGP1"],
                             IPv6Prefix.parse("2002::/48"), at=0.0)

    def test_tpot_deploys_gateway(self, telescope, configs):
        hp = telescope.deploy(configs["H_TPot1"], _slot(6), at=1000.0)
        assert "H_TPot1" in telescope.gateways
        gateway = telescope.gateways["H_TPot1"]
        assert gateway.responds(hp.prefix.network | 9, ICMPV6, None)


class TestTriggers:
    def test_tls_issuance_records_features(self, telescope, configs):
        hp = telescope.deploy(configs["H_Org/net"], _slot(1), at=1000.0)
        certs = telescope.issue_tls(hp, at=5 * DAY)
        assert hp.feature_time(Feature.TLS_ROOT) == 5 * DAY
        assert hp.feature_time(Feature.TLS_SUB) == 5 * DAY
        # 2 roots + subdomain certs up to the CA's weekly limit (the root
        # of the subdomain-bearing domain consumes one slot, exactly the
        # Let's Encrypt constraint that capped the paper at 50 names).
        assert 2 + 45 <= len(certs) <= 2 + MAX_SUBDOMAIN_CERTS

    def test_tls_requires_domains(self, telescope, configs):
        hp = telescope.deploy(configs["H_BGP1"], _slot(2), at=1000.0)
        with pytest.raises(ValueError):
            telescope.issue_tls(hp, at=5 * DAY)

    def test_hitlist_insertion(self, telescope, configs):
        hp = telescope.deploy(configs["H_TPot1"], _slot(3), at=1000.0)
        entries = telescope.insert_hitlist(hp, at=10 * DAY)
        categories = {e.category for e in entries}
        assert HitlistCategory.ALIASED in categories
        assert HitlistCategory.ICMP in categories
        assert len(hp.manual_hitlist_addresses) == 2
        assert hp.feature_time(Feature.HITLIST) == 10 * DAY

    def test_udp_hitlist_insertion_icmp_only(self, telescope, configs):
        hp = telescope.deploy(configs["H_UDP"], _slot(4), at=1000.0)
        entries = telescope.insert_hitlist(hp, at=10 * DAY)
        assert {e.category for e in entries} == {HitlistCategory.ICMP}

    def test_withdrawal(self, telescope, configs):
        hp = telescope.deploy(configs["H_BGP1"], _slot(5), at=1000.0)
        telescope.withdraw(hp, at=30 * DAY)
        assert hp.withdrawn_at == 30 * DAY
        assert telescope.speaker.collectors.visibility_count(
            hp.announced_prefix, 40 * DAY
        ) == 0


class TestDataPlane:
    def test_capture_everything_in_covering(self, telescope, configs):
        telescope.deploy(configs["H_Alias"], _slot(1), at=1000.0)
        telescope.handle(icmp_echo_request(2000.0, SRC, COVERING.network | 1))
        telescope.handle(icmp_echo_request(2001.0, SRC, _slot(1).network | 5))
        assert len(telescope.capturer) == 2

    def test_twinklenet_answers_for_aliased(self, telescope, configs):
        hp = telescope.deploy(configs["H_Alias"], _slot(1), at=1000.0)
        telescope.handle(icmp_echo_request(2000.0, SRC, hp.prefix.network | 5))
        assert telescope.response_count == 1

    def test_tpot_path(self, telescope, configs):
        hp = telescope.deploy(configs["H_TPot1"], _slot(2), at=1000.0)
        telescope.handle(tcp_segment(2000.0, SRC, hp.prefix.network | 3,
                                     4000, 22, TcpFlags.SYN))
        assert telescope.gateways["H_TPot1"].nat_log

    def test_control_space_is_silent(self, telescope):
        telescope.handle(icmp_echo_request(2000.0, SRC, COVERING.network | 1))
        assert telescope.response_count == 0


class TestOracles:
    def test_responds_time_gated(self, telescope, configs):
        hp = telescope.deploy(configs["H_Alias"], _slot(1), at=1000.0)
        addr = hp.prefix.network | 77
        assert not telescope.responds(addr, ICMPV6, None, at=500.0)
        assert telescope.responds(addr, ICMPV6, None, at=1500.0)

    def test_responds_after_withdrawal(self, telescope, configs):
        hp = telescope.deploy(configs["H_Alias"], _slot(1), at=1000.0)
        telescope.withdraw(hp, at=2000.0)
        assert not telescope.responds(hp.prefix.network | 77, ICMPV6, None,
                                      at=3000.0)

    def test_interaction_levels(self, telescope, configs):
        tpot = telescope.deploy(configs["H_TPot1"], _slot(1), at=1000.0)
        alias = telescope.deploy(configs["H_Alias"], _slot(2), at=1000.0)
        bgp = telescope.deploy(configs["H_BGP1"], _slot(3), at=1000.0)
        at = 2000.0
        assert telescope.interaction_level(tpot.prefix.network | 9, at) == 2
        assert telescope.interaction_level(alias.prefix.network | 9, at) == 1
        assert telescope.interaction_level(bgp.prefix.network | 9, at) == 0
        assert telescope.interaction_level(COVERING.network | 9, at) == 0
