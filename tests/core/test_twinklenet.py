"""Tests for the Twinklenet low-interaction honeypot (Table 7 semantics)."""

import pytest

from repro.core.honeyprefix import HoneyprefixConfig, IcmpMode, deploy_addresses
from repro.core.twinklenet import (
    DNS_SERVFAIL_PAYLOAD,
    NTP_KOD_PAYLOAD,
    Twinklenet,
    TwinklenetConfig,
)
from repro.net.addr import IPv6Prefix
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)

PREFIX = IPv6Prefix.parse("2001:db8:200::/48")
SRC = IPv6Prefix.parse("2001:db8:f00::/48").network | 3


@pytest.fixture
def pot(rng):
    config = HoneyprefixConfig(
        name="hp", icmp_mode=IcmpMode.ADDRESSES,
        tcp_services=(("web", (80, 443)),), udp_ports=(53, 123),
    )
    hp = deploy_addresses(config, PREFIX, rng)
    responses = []
    twinklenet = Twinklenet(TwinklenetConfig([hp]),
                            transmit=responses.append)
    return twinklenet, hp, responses


def _tcp_addr(hp):
    return next(a for a, b in hp.responsive.items() if (TCP, 80) in b)


def _udp_addr(hp):
    return next(a for a, b in hp.responsive.items() if (UDP, 53) in b)


class TestIcmp:
    def test_echo_reply_for_responsive(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(icmp_echo_request(1.0, SRC, PREFIX.network | 1))
        assert len(responses) == 1
        assert responses[0].sport == int(IcmpType.ECHO_REPLY)
        assert responses[0].dst == SRC

    def test_silence_for_dark_address(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(icmp_echo_request(1.0, SRC, PREFIX.network | 0xF00))
        assert responses == []

    def test_silence_outside_honeyprefixes(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(icmp_echo_request(1.0, SRC, 42))
        assert responses == []
        assert twinklenet.rx_count == 1


class TestTcp:
    def test_full_handshake_capture_and_fin(self, pot):
        twinklenet, hp, responses = pot
        addr = _tcp_addr(hp)
        twinklenet.handle(tcp_segment(1.0, SRC, addr, 5000, 80,
                                      TcpFlags.SYN, seq=100))
        assert TcpFlags(responses[-1].flags) == TcpFlags.SYN | TcpFlags.ACK
        assert responses[-1].ack == 101
        twinklenet.handle(tcp_segment(1.1, SRC, addr, 5000, 80,
                                      TcpFlags.ACK, seq=101, ack=1))
        twinklenet.handle(tcp_segment(1.2, SRC, addr, 5000, 80,
                                      TcpFlags.PSH | TcpFlags.ACK, seq=101,
                                      payload=b"GET /"))
        assert TcpFlags(responses[-1].flags) & TcpFlags.FIN
        assert twinklenet.sessions_completed[0].first_data == b"GET /"

    def test_midstream_gets_rst(self, pot):
        twinklenet, hp, responses = pot
        addr = _tcp_addr(hp)
        twinklenet.handle(tcp_segment(1.0, SRC, addr, 6000, 80,
                                      TcpFlags.ACK, ack=55))
        assert TcpFlags(responses[-1].flags) == TcpFlags.RST
        assert responses[-1].seq == 55

    def test_closed_port_silence(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(tcp_segment(1.0, SRC, _tcp_addr(hp), 7000, 8080,
                                      TcpFlags.SYN))
        assert responses == []


class TestUdp:
    def test_dns_servfail(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(udp_datagram(1.0, SRC, _udp_addr(hp), 9000, 53,
                                       b"\xab\xcdquery"))
        assert responses[-1].payload[:2] == b"\xab\xcd"
        assert DNS_SERVFAIL_PAYLOAD in responses[-1].payload

    def test_ntp_kiss_of_death(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(udp_datagram(1.0, SRC, _udp_addr(hp), 9000, 123,
                                       b"\x23" + b"\x00" * 47))
        assert responses[-1].payload == NTP_KOD_PAYLOAD
        assert b"DENY" in responses[-1].payload

    def test_unbound_udp_silence(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(udp_datagram(1.0, SRC, _udp_addr(hp), 9000, 161))
        assert responses == []


class TestAliasing:
    def test_multiple_prefixes_one_instance(self, rng):
        """IP aliasing: one instance serves non-contiguous subnets."""
        prefix_a = IPv6Prefix.parse("2001:db8:200::/48")
        prefix_b = IPv6Prefix.parse("2001:db8:999::/48")
        config = HoneyprefixConfig(name="a", aliased=True,
                                   icmp_mode=IcmpMode.FULL)
        hp_a = deploy_addresses(config, prefix_a, rng)
        hp_b = deploy_addresses(
            HoneyprefixConfig(name="b", aliased=True,
                              icmp_mode=IcmpMode.FULL),
            prefix_b, rng,
        )
        responses = []
        pot = Twinklenet(TwinklenetConfig([hp_a, hp_b]),
                         transmit=responses.append)
        pot.handle(icmp_echo_request(1.0, SRC, prefix_a.network | 77))
        pot.handle(icmp_echo_request(2.0, SRC, prefix_b.network | 88))
        assert len(responses) == 2

    def test_responds_oracle(self, pot):
        twinklenet, hp, _ = pot
        assert twinklenet.responds(PREFIX.network | 1, ICMPV6, None)
        assert not twinklenet.responds(42, ICMPV6, None)

    def test_counters(self, pot):
        twinklenet, hp, _ = pot
        twinklenet.handle(icmp_echo_request(1.0, SRC, PREFIX.network | 1))
        assert twinklenet.rx_count == 1
        assert twinklenet.tx_count == 1
