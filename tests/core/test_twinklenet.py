"""Tests for the Twinklenet low-interaction honeypot (Table 7 semantics)."""

import pytest

from repro.core.honeyprefix import HoneyprefixConfig, IcmpMode, deploy_addresses
from repro.core.twinklenet import (
    DNS_SERVFAIL_PAYLOAD,
    NTP_KOD_PAYLOAD,
    Twinklenet,
    TwinklenetConfig,
)
from repro.net.addr import IPv6Prefix
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)

PREFIX = IPv6Prefix.parse("2001:db8:200::/48")
SRC = IPv6Prefix.parse("2001:db8:f00::/48").network | 3


@pytest.fixture
def pot(rng):
    config = HoneyprefixConfig(
        name="hp", icmp_mode=IcmpMode.ADDRESSES,
        tcp_services=(("web", (80, 443)),), udp_ports=(53, 123),
    )
    hp = deploy_addresses(config, PREFIX, rng)
    responses = []
    twinklenet = Twinklenet(TwinklenetConfig([hp]),
                            transmit=responses.append)
    return twinklenet, hp, responses


def _tcp_addr(hp):
    return next(a for a, b in hp.responsive.items() if (TCP, 80) in b)


def _udp_addr(hp):
    return next(a for a, b in hp.responsive.items() if (UDP, 53) in b)


class TestIcmp:
    def test_echo_reply_for_responsive(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(icmp_echo_request(1.0, SRC, PREFIX.network | 1))
        assert len(responses) == 1
        assert responses[0].sport == int(IcmpType.ECHO_REPLY)
        assert responses[0].dst == SRC

    def test_silence_for_dark_address(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(icmp_echo_request(1.0, SRC, PREFIX.network | 0xF00))
        assert responses == []

    def test_silence_outside_honeyprefixes(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(icmp_echo_request(1.0, SRC, 42))
        assert responses == []
        assert twinklenet.rx_count == 1


class TestTcp:
    def test_full_handshake_capture_and_fin(self, pot):
        twinklenet, hp, responses = pot
        addr = _tcp_addr(hp)
        twinklenet.handle(tcp_segment(1.0, SRC, addr, 5000, 80,
                                      TcpFlags.SYN, seq=100))
        assert TcpFlags(responses[-1].flags) == TcpFlags.SYN | TcpFlags.ACK
        assert responses[-1].ack == 101
        twinklenet.handle(tcp_segment(1.1, SRC, addr, 5000, 80,
                                      TcpFlags.ACK, seq=101, ack=1))
        twinklenet.handle(tcp_segment(1.2, SRC, addr, 5000, 80,
                                      TcpFlags.PSH | TcpFlags.ACK, seq=101,
                                      payload=b"GET /"))
        assert TcpFlags(responses[-1].flags) & TcpFlags.FIN
        assert twinklenet.sessions_completed[0].first_data == b"GET /"

    def test_midstream_gets_rst(self, pot):
        twinklenet, hp, responses = pot
        addr = _tcp_addr(hp)
        twinklenet.handle(tcp_segment(1.0, SRC, addr, 6000, 80,
                                      TcpFlags.ACK, ack=55))
        assert TcpFlags(responses[-1].flags) == TcpFlags.RST
        assert responses[-1].seq == 55

    def test_closed_port_silence(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(tcp_segment(1.0, SRC, _tcp_addr(hp), 7000, 8080,
                                      TcpFlags.SYN))
        assert responses == []


class TestUdp:
    def test_dns_servfail(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(udp_datagram(1.0, SRC, _udp_addr(hp), 9000, 53,
                                       b"\xab\xcdquery"))
        assert responses[-1].payload[:2] == b"\xab\xcd"
        assert DNS_SERVFAIL_PAYLOAD in responses[-1].payload

    def test_ntp_kiss_of_death(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(udp_datagram(1.0, SRC, _udp_addr(hp), 9000, 123,
                                       b"\x23" + b"\x00" * 47))
        assert responses[-1].payload == NTP_KOD_PAYLOAD
        assert b"DENY" in responses[-1].payload

    def test_unbound_udp_silence(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(udp_datagram(1.0, SRC, _udp_addr(hp), 9000, 161))
        assert responses == []


class TestSessionLifecycle:
    """The session table must stay bounded under scanner load."""

    def _tcp_pot(self, rng, session_timeout=600.0, max_sessions=4096):
        config = HoneyprefixConfig(
            name="hp", icmp_mode=IcmpMode.ADDRESSES,
            tcp_services=(("web", (80,)),),
        )
        hp = deploy_addresses(config, PREFIX, rng)
        responses = []
        pot = Twinklenet(
            TwinklenetConfig([hp], session_timeout=session_timeout,
                             max_sessions=max_sessions),
            transmit=responses.append,
        )
        return pot, _tcp_addr(hp), responses

    def test_syn_sweep_leaves_table_bounded(self, rng):
        """10k SYN-only probes (the classic scanner pattern) must not grow
        the session table past the configured cap."""
        pot, addr, _ = self._tcp_pot(rng, max_sessions=512)
        for i in range(10_000):
            src = (0x2620 << 112) | i
            pot.handle(tcp_segment(i * 0.01, src, addr, 5000, 80,
                                   TcpFlags.SYN))
        assert len(pot._sessions) <= 512
        assert pot.sessions_evicted >= 10_000 - 512

    def test_idle_sessions_evicted_by_timestamp(self, rng):
        pot, addr, _ = self._tcp_pot(rng, session_timeout=600.0)
        pot.handle(tcp_segment(0.0, SRC, addr, 5000, 80, TcpFlags.SYN))
        assert len(pot._sessions) == 1
        # A later packet (any TCP traffic) drives the idle sweep.
        pot.handle(tcp_segment(1200.0, SRC + 1, addr, 5001, 80,
                               TcpFlags.SYN))
        assert len(pot._sessions) == 1  # only the fresh session remains
        assert pot.sessions_evicted == 1

    def test_fin_tears_down_session_with_ack(self, rng):
        pot, addr, responses = self._tcp_pot(rng)
        pot.handle(tcp_segment(1.0, SRC, addr, 5000, 80, TcpFlags.SYN,
                               seq=100))
        pot.handle(tcp_segment(1.1, SRC, addr, 5000, 80, TcpFlags.ACK,
                               seq=101, ack=1))
        pot.handle(tcp_segment(1.2, SRC, addr, 5000, 80,
                               TcpFlags.FIN | TcpFlags.ACK, seq=101))
        assert pot._sessions == {}
        assert TcpFlags(responses[-1].flags) == TcpFlags.ACK
        assert responses[-1].ack == 102

    def test_rst_tears_down_session_silently(self, rng):
        pot, addr, responses = self._tcp_pot(rng)
        pot.handle(tcp_segment(1.0, SRC, addr, 5000, 80, TcpFlags.SYN))
        n_before = len(responses)
        pot.handle(tcp_segment(1.1, SRC, addr, 5000, 80, TcpFlags.RST,
                               seq=1))
        assert pot._sessions == {}
        assert len(responses) == n_before  # no reply to the RST

    def test_syn_ack_fin_no_payload_leaves_no_session(self, rng):
        """The SYN -> ACK -> FIN pattern (connect scan, no data) used to
        leak one TcpSession forever."""
        pot, addr, _ = self._tcp_pot(rng)
        pot.handle(tcp_segment(1.0, SRC, addr, 5000, 80, TcpFlags.SYN))
        pot.handle(tcp_segment(1.1, SRC, addr, 5000, 80, TcpFlags.ACK,
                               seq=1, ack=1))
        pot.handle(tcp_segment(1.2, SRC, addr, 5000, 80,
                               TcpFlags.FIN | TcpFlags.ACK, seq=1))
        assert pot._sessions == {}

    def test_data_capture_still_works_after_eviction_plumbing(self, rng):
        """The Table 7 capture-then-FIN path is unchanged."""
        pot, addr, responses = self._tcp_pot(rng)
        pot.handle(tcp_segment(1.0, SRC, addr, 5000, 80, TcpFlags.SYN,
                               seq=100))
        pot.handle(tcp_segment(1.1, SRC, addr, 5000, 80, TcpFlags.ACK,
                               seq=101, ack=1))
        pot.handle(tcp_segment(1.2, SRC, addr, 5000, 80,
                               TcpFlags.PSH | TcpFlags.ACK, seq=101,
                               payload=b"GET /"))
        assert TcpFlags(responses[-1].flags) & TcpFlags.FIN
        assert pot.sessions_completed[0].first_data == b"GET /"
        assert pot._sessions == {}


class TestDnsReply:
    def test_reply_is_wellformed_12_byte_header(self, pot):
        twinklenet, hp, responses = pot
        twinklenet.handle(udp_datagram(1.0, SRC, _udp_addr(hp), 9000, 53,
                                       b"\xab\xcdquery"))
        reply = responses[-1].payload
        assert len(reply) == 12
        assert reply[:2] == b"\xab\xcd"
        assert reply[2:4] == DNS_SERVFAIL_PAYLOAD
        assert reply[4:] == b"\x00" * 8  # QD/AN/NS/AR counts all zero

    @pytest.mark.parametrize("query", [b"", b"\xab"])
    def test_short_query_txid_zero_padded(self, pot, query):
        """Queries shorter than two bytes used to produce a truncated /
        garbage transaction id."""
        twinklenet, hp, responses = pot
        twinklenet.handle(udp_datagram(1.0, SRC, _udp_addr(hp), 9000, 53,
                                       query))
        reply = responses[-1].payload
        assert len(reply) == 12
        assert reply[:2] == query.ljust(2, b"\x00")
        assert reply[2:4] == DNS_SERVFAIL_PAYLOAD


class TestOwnerIndex:
    def test_nested_prefixes_first_listed_wins(self, rng):
        """With nested honeyprefixes the indexed lookup must match the
        original linear scan: the first config entry covering the address."""
        covering = IPv6Prefix.parse("2001:db8:300::/48")
        nested = IPv6Prefix.parse("2001:db8:300:a000::/52")
        hp_cover = deploy_addresses(
            HoneyprefixConfig(name="cover", aliased=True,
                              icmp_mode=IcmpMode.FULL), covering, rng)
        hp_nested = deploy_addresses(
            HoneyprefixConfig(name="nested", announce_length=52,
                              aliased=True, icmp_mode=IcmpMode.FULL),
            nested, rng)
        inside_nested = nested.network | 7

        pot = Twinklenet(TwinklenetConfig([hp_cover, hp_nested]))
        assert pot._owner(inside_nested) is hp_cover
        assert pot._owner(covering.network | 1) is hp_cover

        pot = Twinklenet(TwinklenetConfig([hp_nested, hp_cover]))
        assert pot._owner(inside_nested) is hp_nested
        assert pot._owner(covering.network | 1) is hp_cover
        assert pot._owner(IPv6Prefix.parse("2001:db8:999::/48").network) is None

    def test_index_follows_late_deploys(self, rng):
        """ProactiveTelescope appends honeyprefixes after construction;
        the index must pick them up."""
        hp_a = deploy_addresses(
            HoneyprefixConfig(name="a", aliased=True,
                              icmp_mode=IcmpMode.FULL), PREFIX, rng)
        pot = Twinklenet(TwinklenetConfig([hp_a]))
        assert pot._owner(PREFIX.network | 1) is hp_a

        late_prefix = IPv6Prefix.parse("2001:db8:400::/48")
        hp_b = deploy_addresses(
            HoneyprefixConfig(name="b", aliased=True,
                              icmp_mode=IcmpMode.FULL), late_prefix, rng)
        pot.config.honeyprefixes.append(hp_b)
        assert pot._owner(late_prefix.network | 1) is hp_b


class TestAliasing:
    def test_multiple_prefixes_one_instance(self, rng):
        """IP aliasing: one instance serves non-contiguous subnets."""
        prefix_a = IPv6Prefix.parse("2001:db8:200::/48")
        prefix_b = IPv6Prefix.parse("2001:db8:999::/48")
        config = HoneyprefixConfig(name="a", aliased=True,
                                   icmp_mode=IcmpMode.FULL)
        hp_a = deploy_addresses(config, prefix_a, rng)
        hp_b = deploy_addresses(
            HoneyprefixConfig(name="b", aliased=True,
                              icmp_mode=IcmpMode.FULL),
            prefix_b, rng,
        )
        responses = []
        pot = Twinklenet(TwinklenetConfig([hp_a, hp_b]),
                         transmit=responses.append)
        pot.handle(icmp_echo_request(1.0, SRC, prefix_a.network | 77))
        pot.handle(icmp_echo_request(2.0, SRC, prefix_b.network | 88))
        assert len(responses) == 2

    def test_responds_oracle(self, pot):
        twinklenet, hp, _ = pot
        assert twinklenet.responds(PREFIX.network | 1, ICMPV6, None)
        assert not twinklenet.responds(42, ICMPV6, None)

    def test_counters(self, pot):
        twinklenet, hp, _ = pot
        twinklenet.handle(icmp_echo_request(1.0, SRC, PREFIX.network | 1))
        assert twinklenet.rx_count == 1
        assert twinklenet.tx_count == 1
