"""Tests for the passive darknet telescope and the packet capturer."""

import pytest

from repro.core.capture import PacketCapturer
from repro.core.darknet import DarknetTelescope
from repro.net.addr import IPv6Prefix
from repro.net.packet import icmp_echo_request
from repro.net.pcapstore import read_packets

COVERING = IPv6Prefix.parse("2001:db8::/32")


class TestDarknet:
    def test_captures_dark_traffic(self):
        seen = []
        telescope = DarknetTelescope("NT", COVERING, on_packet=seen.append)
        pkt = icmp_echo_request(1.0, 9, COVERING.network | 5)
        telescope.handle(pkt)
        assert seen == [pkt]
        assert telescope.captured_count == 1

    def test_ignores_out_of_prefix(self):
        telescope = DarknetTelescope("NT", COVERING)
        telescope.handle(icmp_echo_request(1.0, 9, 42))
        assert telescope.ignored_count == 1

    def test_assigned_subnets_not_monitored(self):
        telescope = DarknetTelescope("NT", COVERING)
        live = COVERING.subnet_at(0, 33)
        telescope.assign(live)
        assert not telescope.monitors(live.network | 1)
        assert telescope.monitors(COVERING.subnet_at(1, 33).network | 1)
        telescope.handle(icmp_echo_request(1.0, 9, live.network | 1))
        assert telescope.ignored_count == 1

    def test_unassign_restores(self):
        telescope = DarknetTelescope("NT", COVERING)
        live = COVERING.subnet_at(0, 33)
        telescope.assign(live)
        telescope.unassign(live)
        assert telescope.monitors(live.network | 1)

    def test_assign_rejects_outside(self):
        telescope = DarknetTelescope("NT", COVERING)
        with pytest.raises(ValueError):
            telescope.assign(IPv6Prefix.parse("2002::/48"))

    def test_dark_fraction(self):
        telescope = DarknetTelescope("NT", COVERING)
        assert telescope.dark_fraction() == 1.0
        telescope.assign(COVERING.subnet_at(0, 33))
        assert telescope.dark_fraction() == pytest.approx(0.5)


class TestCapturer:
    def test_columns_roundtrip(self):
        capturer = PacketCapturer()
        pkt = icmp_echo_request(3.5, 0xABCDEF << 64, COVERING.network | 9)
        capturer.capture(pkt)
        records = capturer.to_records()
        assert len(records) == 1
        assert list(records.src_addresses()) == [pkt.src]
        assert list(records.dst_addresses()) == [pkt.dst]
        assert records.ts[0] == 3.5

    def test_mirror_file(self, tmp_path):
        path = tmp_path / "mirror.rpv6"
        capturer = PacketCapturer(mirror_path=path)
        pkt = icmp_echo_request(1.0, 1, 2)
        capturer.capture(pkt)
        capturer.close()
        assert read_packets(path) == [pkt]

    def test_len(self):
        capturer = PacketCapturer()
        assert len(capturer) == 0
        capturer.capture(icmp_echo_request(1.0, 1, 2))
        assert len(capturer) == 1
