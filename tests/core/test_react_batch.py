"""Scalar-vs-batch equivalence of the columnar honeypot reply path.

The contract under test: ``Twinklenet.handle_batch`` and
``DnatGateway.handle_batch`` produce byte-identical replies, state and
counters to feeding the same packets one by one through ``handle``.
Traffic is randomized per test (addresses, ports, flags, interleavings)
and every comparison is exact — replies as full ``Packet`` values in
order, session tables, NAT/interaction logs, metric snapshots.
"""

import numpy as np
import pytest

from repro.core.honeyprefix import HoneyprefixConfig, IcmpMode, deploy_addresses
from repro.core.tpot import (
    DnatGateway,
    DnatLog,
    DnatLogEntry,
    TPOT1_CONTAINERS,
    TPotInstance,
)
from repro.core.twinklenet import (
    DNS_SERVFAIL_PAYLOAD,
    NTP_KOD_PAYLOAD,
    Twinklenet,
    TwinklenetConfig,
)
from repro.net.addr import IPv6Prefix
from repro.net.batch import WireBatch
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    Packet,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)
from repro.obs import MetricsRegistry, use_registry

PREFIX = IPv6Prefix.parse("2001:db8:200::/48")
ALIASED_PREFIX = IPv6Prefix.parse("2001:db8:201::/48")
TPOT_PREFIX = IPv6Prefix.parse("2001:db8:300::/48")
SRC_NET = IPv6Prefix.parse("2001:db8:f00::/48").network


def _make_pot(rng, **config_kwargs):
    """A Twinklenet over one bound and one aliased honeyprefix, plus its
    private metrics registry and transmit log."""
    defaults = dict(
        name="hp", icmp_mode=IcmpMode.ADDRESSES,
        tcp_services=(("web", (80, 443)),), udp_ports=(53, 123, 9999),
    )
    defaults.update(config_kwargs)
    bound = deploy_addresses(
        HoneyprefixConfig(**defaults), PREFIX, np.random.default_rng(99))
    aliased = deploy_addresses(
        HoneyprefixConfig(name="hp_alias", aliased=True,
                          icmp_mode=IcmpMode.FULL),
        ALIASED_PREFIX, np.random.default_rng(99))
    registry = MetricsRegistry()
    out = []
    with use_registry(registry):
        pot = Twinklenet(
            TwinklenetConfig([bound, aliased],
                             session_timeout=50.0, max_sessions=64),
            transmit=out.append)
    return pot, bound, registry, out


def _random_traffic(rng, hp, n):
    """A randomized packet mix: echo requests, TCP lifecycle segments, DNS /
    NTP / mute-port / closed-port UDP, dark addresses, both prefixes."""
    tcp_addrs = [a for a, b in hp.responsive.items() if (TCP, 80) in b]
    udp_addrs = [a for a, b in hp.responsive.items() if (UDP, 53) in b]
    icmp_addrs = hp.icmp_addresses()
    pkts = []
    ts = 0.0
    for _ in range(n):
        ts += float(rng.exponential(0.5))
        src = SRC_NET | int(rng.integers(1, 40))
        kind = int(rng.integers(0, 10))
        if kind == 0:
            dst = int(rng.choice(icmp_addrs)) if icmp_addrs else PREFIX.network | 7
            pkts.append(icmp_echo_request(ts, src, dst, payload=b"ping"))
        elif kind == 1:
            pkts.append(icmp_echo_request(
                ts, src, ALIASED_PREFIX.network | int(rng.integers(0, 1 << 20))))
        elif kind == 2:
            pkts.append(icmp_echo_request(ts, src, PREFIX.network | 0xDEAD))
        elif kind in (3, 4, 5):
            dst = int(rng.choice(tcp_addrs))
            sport = 5000 + int(rng.integers(0, 6))
            step = int(rng.integers(0, 5))
            if step == 0:
                pkts.append(tcp_segment(ts, src, dst, sport, 80,
                                        TcpFlags.SYN, seq=int(rng.integers(1, 9999))))
            elif step == 1:
                pkts.append(tcp_segment(ts, src, dst, sport, 80,
                                        TcpFlags.ACK, seq=101, ack=1))
            elif step == 2:
                pkts.append(tcp_segment(ts, src, dst, sport, 80,
                                        TcpFlags.PSH | TcpFlags.ACK,
                                        seq=101, payload=b"GET / HTTP/1.0\r\n"))
            elif step == 3:
                pkts.append(tcp_segment(ts, src, dst, sport, 80,
                                        TcpFlags.FIN | TcpFlags.ACK, seq=120))
            else:
                pkts.append(tcp_segment(ts, src, dst, sport, 80,
                                        TcpFlags.RST, seq=0))
        elif kind == 6:
            dst = int(rng.choice(udp_addrs))
            port = int(rng.choice([53, 123, 9999, 4444]))
            pkts.append(udp_datagram(ts, src, dst, 3333, port,
                                     payload=bytes(rng.integers(0, 256, 4,
                                                                dtype=np.uint8))))
        elif kind == 7:
            pkts.append(udp_datagram(ts, src, PREFIX.network | 0xBEEF, 3333, 53,
                                     payload=b"\xaa\xbb"))
        else:
            pkts.append(tcp_segment(ts, src, PREFIX.network | 0xC0DE,
                                    6000, 81, TcpFlags.SYN, seq=1))
    return pkts


def _run_scalar(pot, pkts):
    for pkt in pkts:
        pot.handle(pkt)


def _state(pot):
    return (pot._sessions, pot.sessions_completed, pot.sessions_evicted,
            pot.rx_count, pot.tx_count, pot._last_sweep)


class TestTwinklenetEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_mixed_traffic(self, seed):
        rng = np.random.default_rng(seed)
        pot_s, hp, reg_s, out_s = _make_pot(rng)
        pot_b, _, reg_b, out_b = _make_pot(rng)
        pkts = _random_traffic(rng, hp, 400)
        _run_scalar(pot_s, pkts)
        replies = pot_b.handle_batch(WireBatch.from_packets(pkts))
        assert out_b == out_s  # batch transmit falls back to per-packet
        assert replies.to_packets() == out_s
        assert _state(pot_b) == _state(pot_s)
        assert reg_b.snapshot()["counters"] == reg_s.snapshot()["counters"]

    @pytest.mark.parametrize("seed", [10, 11])
    def test_split_into_many_batches(self, seed):
        """Cutting the same stream into arbitrary batch boundaries changes
        nothing — state carries across handle_batch calls."""
        rng = np.random.default_rng(seed)
        pot_s, hp, reg_s, out_s = _make_pot(rng)
        pot_b, _, reg_b, out_b = _make_pot(rng)
        pkts = _random_traffic(rng, hp, 300)
        _run_scalar(pot_s, pkts)
        i = 0
        while i < len(pkts):
            step = int(rng.integers(1, 40))
            pot_b.handle_batch(WireBatch.from_packets(pkts[i:i + step]))
            i += step
        assert out_b == out_s
        assert _state(pot_b) == _state(pot_s)
        assert reg_b.snapshot()["counters"] == reg_s.snapshot()["counters"]

    def test_syn_flood_pure_vector_path(self):
        """All-SYN batches (probe traffic) take the vectorized segment and
        still match, including re-SYNs of the same key within a batch."""
        rng = np.random.default_rng(42)
        pot_s, hp, reg_s, out_s = _make_pot(rng)
        pot_b, _, reg_b, out_b = _make_pot(rng)
        addr = next(a for a, b in hp.responsive.items() if (TCP, 80) in b)
        pkts = [
            tcp_segment(float(i) * 0.01, SRC_NET | int(rng.integers(1, 8)),
                        addr, 5000 + int(rng.integers(0, 3)), 80,
                        TcpFlags.SYN, seq=i)
            for i in range(200)
        ]
        _run_scalar(pot_s, pkts)
        pot_b.handle_batch(WireBatch.from_packets(pkts))
        assert out_b == out_s
        assert _state(pot_b) == _state(pot_s)
        assert reg_b.snapshot()["counters"] == reg_s.snapshot()["counters"]

    def test_idle_eviction_straddles_batch_gap(self):
        """Sessions opened in one batch are sweep-evicted by a later batch
        exactly when the scalar path would evict them."""
        rng = np.random.default_rng(7)
        pot_s, hp, _, out_s = _make_pot(rng)
        pot_b, _, _, out_b = _make_pot(rng)
        addr = next(a for a, b in hp.responsive.items() if (TCP, 80) in b)
        early = [tcp_segment(1.0 + i, SRC_NET | (i + 1), addr, 5000, 80,
                             TcpFlags.SYN, seq=1) for i in range(5)]
        # timeout is 50.0: the late packets trip a sweep that evicts the
        # early sessions (idle > timeout) mid-stream.
        late = [tcp_segment(200.0 + i, SRC_NET | 99, addr, 6000 + i, 80,
                            TcpFlags.SYN, seq=1) for i in range(3)]
        _run_scalar(pot_s, early + late)
        pot_b.handle_batch(WireBatch.from_packets(early))
        pot_b.handle_batch(WireBatch.from_packets(late))
        assert pot_b.sessions_evicted == pot_s.sessions_evicted == 5
        assert _state(pot_b) == _state(pot_s)
        assert out_b == out_s

    def test_max_sessions_cap_preserves_eviction_order(self):
        """Overflowing the cap recycles oldest-inserted sessions in the
        same order on both paths."""
        rng = np.random.default_rng(13)
        pot_s, hp, _, out_s = _make_pot(rng)
        pot_b, _, _, out_b = _make_pot(rng)
        pot_s.config.max_sessions = 8
        pot_b.config.max_sessions = 8
        addr = next(a for a, b in hp.responsive.items() if (TCP, 80) in b)
        pkts = [tcp_segment(1.0 + 0.01 * i, SRC_NET | (i % 20 + 1), addr,
                            7000 + i % 3, 80, TcpFlags.SYN, seq=i)
                for i in range(40)]
        _run_scalar(pot_s, pkts)
        pot_b.handle_batch(WireBatch.from_packets(pkts))
        assert list(pot_b._sessions) == list(pot_s._sessions)  # key order
        assert _state(pot_b) == _state(pot_s)
        assert out_b == out_s

    def test_cap_bulk_eviction_and_entangled_fallback(self):
        """At-cap segments whose victims are untouched by the segment take
        the bulk eviction branch; a segment that re-SYNs a session due for
        eviction must fall back to row order — both match scalar."""
        rng = np.random.default_rng(17)
        pot_s, hp, _, out_s = _make_pot(rng)
        pot_b, _, _, out_b = _make_pot(rng)
        pot_s.config.max_sessions = 16
        pot_b.config.max_sessions = 16
        addr = next(a for a, b in hp.responsive.items() if (TCP, 80) in b)

        def syn(ts, host, sport):
            return tcp_segment(ts, SRC_NET | host, addr, sport, 80,
                               TcpFlags.SYN, seq=1)

        fill = [syn(1.0 + 0.01 * i, i + 1, 5000) for i in range(16)]
        # 8 fresh keys against a full table: bulk-evicts hosts 1..8.
        overflow = [syn(2.0 + 0.01 * i, 100 + i, 5000) for i in range(8)]
        # Re-SYN of host 9 — now the oldest live session — mixed with
        # enough fresh keys that it is both reopen target and eviction
        # victim: only row order decides, so the kernel must fall back.
        entangled = [syn(3.0, 9, 5000)] + [
            syn(3.01 + 0.01 * i, 200 + i, 5000) for i in range(10)]
        for chunk in (fill, overflow, entangled):
            _run_scalar(pot_s, chunk)
            pot_b.handle_batch(WireBatch.from_packets(chunk))
            assert list(pot_b._sessions) == list(pot_s._sessions)
            assert _state(pot_b) == _state(pot_s)
        assert out_b == out_s

    def test_cap_flood_overflow_segment(self):
        """A single all-SYN segment with more distinct new keys than the
        whole table holds (scanner flood) wipes and repopulates the table
        exactly like the scalar FIFO, including the insertion-sequence
        numbers consumed by inserts that were evicted again mid-segment."""
        rng = np.random.default_rng(29)
        pot_s, hp, reg_s, out_s = _make_pot(rng)
        pot_b, _, reg_b, out_b = _make_pot(rng)
        pot_s.config.max_sessions = 16
        pot_b.config.max_sessions = 16
        addr = next(a for a, b in hp.responsive.items() if (TCP, 80) in b)

        def syn(ts, host, sport):
            return tcp_segment(ts, SRC_NET | host, addr, sport, 80,
                               TcpFlags.SYN, seq=1)

        prefill = [syn(1.0 + 0.01 * i, i + 1, 5000) for i in range(10)]
        flood = [syn(2.0 + 0.001 * i, 500 + i, 5000) for i in range(50)]
        # The follow-up batch evicts by insertion sequence, so it can only
        # match if the flood left the exact scalar bookkeeping behind.
        after = [syn(3.0 + 0.01 * i, 900 + i, 5000) for i in range(4)]
        for chunk in (prefill, flood, after):
            _run_scalar(pot_s, chunk)
            pot_b.handle_batch(WireBatch.from_packets(chunk))
            assert list(pot_b._sessions) == list(pot_s._sessions)
            assert _state(pot_b) == _state(pot_s)
        assert out_b == out_s
        assert reg_b.snapshot()["counters"] == reg_s.snapshot()["counters"]

    @pytest.mark.parametrize("seed", [20, 21, 22])
    def test_cap_churn_randomized(self, seed):
        """Sustained all-SYN churn at a small cap with recycled keys,
        split at random batch boundaries, stays state- and reply-exact."""
        rng = np.random.default_rng(seed)
        pot_s, hp, reg_s, out_s = _make_pot(rng)
        pot_b, _, reg_b, out_b = _make_pot(rng)
        pot_s.config.max_sessions = 12
        pot_b.config.max_sessions = 12
        addr = next(a for a, b in hp.responsive.items() if (TCP, 80) in b)
        pkts = [
            tcp_segment(1.0 + 0.01 * i, SRC_NET | int(rng.integers(1, 30)),
                        addr, 5000 + int(rng.integers(0, 2)), 80,
                        TcpFlags.SYN, seq=i)
            for i in range(400)
        ]
        _run_scalar(pot_s, pkts)
        i = 0
        while i < len(pkts):
            step = int(rng.integers(1, 60))
            pot_b.handle_batch(WireBatch.from_packets(pkts[i:i + step]))
            i += step
        assert list(pot_b._sessions) == list(pot_s._sessions)
        assert _state(pot_b) == _state(pot_s)
        assert reg_b.snapshot()["counters"] == reg_s.snapshot()["counters"]
        assert out_b == out_s

    def test_dns_servfail_exact_bytes(self):
        rng = np.random.default_rng(3)
        pot_b, hp, _, _ = _make_pot(rng)
        addr = next(a for a, b in hp.responsive.items() if (UDP, 53) in b)
        query = udp_datagram(1.0, SRC_NET | 1, addr, 3333, 53,
                             payload=b"\xab\xcd\x01\x00rest")
        replies = pot_b.handle_batch(WireBatch.from_packets([query]))
        pkts = replies.to_packets()
        assert len(pkts) == 1
        assert pkts[0].payload == (
            b"\xab\xcd" + DNS_SERVFAIL_PAYLOAD + b"\x00\x00" * 4)
        # Short query: the TXID is zero-padded to two bytes.
        short = udp_datagram(2.0, SRC_NET | 1, addr, 3333, 53, payload=b"\x7f")
        pkts = pot_b.handle_batch(WireBatch.from_packets([short])).to_packets()
        assert pkts[0].payload == (
            b"\x7f\x00" + DNS_SERVFAIL_PAYLOAD + b"\x00\x00" * 4)

    def test_ntp_kod_exact_bytes(self):
        rng = np.random.default_rng(3)
        pot_b, hp, _, _ = _make_pot(rng)
        addr = next(a for a, b in hp.responsive.items() if (UDP, 123) in b)
        probe = udp_datagram(1.0, SRC_NET | 1, addr, 123, 123, payload=b"\x23")
        pkts = pot_b.handle_batch(WireBatch.from_packets([probe])).to_packets()
        assert len(pkts) == 1
        assert pkts[0].payload == NTP_KOD_PAYLOAD == b"\x24\x00\x00\x00DENY"

    def test_aliased_icmp_everywhere_bound_elsewhere(self):
        rng = np.random.default_rng(5)
        pot_b, hp, _, _ = _make_pot(rng)
        deep = ALIASED_PREFIX.network | 0xABCDEF
        pkts = pot_b.handle_batch(WireBatch.from_packets([
            icmp_echo_request(1.0, SRC_NET | 1, deep, payload=b"x"),
            icmp_echo_request(1.1, SRC_NET | 1, PREFIX.network | 0xDEAD),
        ])).to_packets()
        assert len(pkts) == 1
        assert pkts[0].src == deep
        assert pkts[0].sport == int(IcmpType.ECHO_REPLY)
        assert pkts[0].payload == b"x"


def _make_gateway():
    registry = MetricsRegistry()
    out = []
    with use_registry(registry):
        tpot = TPotInstance("tpot1", TPOT1_CONTAINERS)
        gateway = DnatGateway(TPOT_PREFIX, tpot, transmit=out.append)
    return gateway, tpot, registry, out


def _random_tpot_traffic(rng, n):
    pkts = []
    ts = 0.0
    for _ in range(n):
        ts += float(rng.exponential(0.3))
        src = SRC_NET | int(rng.integers(1, 30))
        dst = TPOT_PREFIX.network | int(rng.integers(0, 1 << 16))
        kind = int(rng.integers(0, 8))
        if kind == 0:
            pkts.append(icmp_echo_request(ts, src, dst, payload=b"pp"))
        elif kind in (1, 2, 3):
            port = int(rng.choice([22, 80, 443, 25, 9, 9200]))
            pkts.append(tcp_segment(ts, src, dst, 5000 + int(rng.integers(0, 4)),
                                    port, TcpFlags.SYN, seq=int(rng.integers(0, 999))))
        elif kind in (4, 5):
            port = int(rng.choice([53, 69, 161, 9, 5000]))
            pkts.append(udp_datagram(ts, src, dst, 4000, port,
                                     payload=bytes(rng.integers(0, 256, 3,
                                                                dtype=np.uint8))))
        else:
            pkts.append(tcp_segment(ts, src, SRC_NET | 0xFF, 5000, 80,
                                    TcpFlags.SYN, seq=1))  # out of prefix
    return pkts


def _gateway_state(gw):
    return (list(gw.nat_log), gw._flow_ports, gw._flows, gw._next_port,
            gw.rx_count, gw.tx_count, gw.tpot.interactions)


class TestTPotEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_probe_traffic(self, seed):
        rng = np.random.default_rng(seed)
        gw_s, _, reg_s, out_s = _make_gateway()
        gw_b, _, reg_b, out_b = _make_gateway()
        pkts = _random_tpot_traffic(rng, 300)
        for pkt in pkts:
            gw_s.handle(pkt)
        replies = gw_b.handle_batch(WireBatch.from_packets(pkts))
        assert out_b == out_s
        assert replies.to_packets() == out_s
        assert _gateway_state(gw_b) == _gateway_state(gw_s)
        assert reg_b.snapshot()["counters"] == reg_s.snapshot()["counters"]

    def test_nat_log_order_and_port_allocation(self):
        """The columnar NAT log records flows in first-packet order with
        the same sequential port assignment as the scalar path."""
        rng = np.random.default_rng(9)
        gw_s, _, _, _ = _make_gateway()
        gw_b, _, _, _ = _make_gateway()
        pkts = []
        for i in range(30):
            src = SRC_NET | (i % 5 + 1)
            dst = TPOT_PREFIX.network | (i % 3 + 1)
            pkts.append(tcp_segment(1.0 + i * 0.1, src, dst, 5000 + i % 2,
                                    22, TcpFlags.SYN, seq=i))
        for pkt in pkts:
            gw_s.handle(pkt)
        gw_b.handle_batch(WireBatch.from_packets(pkts))
        assert list(gw_b.nat_log) == list(gw_s.nat_log)
        assert gw_b._next_port == gw_s._next_port
        assert [e.source_port for e in gw_b.nat_log] == list(
            range(32_768, 32_768 + len(gw_b.nat_log)))

    def test_handshake_traffic_uses_exact_fallback(self):
        """Batches containing non-SYN TCP (handshake completion, data) drop
        to the shared per-row relay and still match, banners included."""
        rng = np.random.default_rng(21)
        gw_s, _, reg_s, out_s = _make_gateway()
        gw_b, _, reg_b, out_b = _make_gateway()
        src = SRC_NET | 2
        dst = TPOT_PREFIX.network | 77
        pkts = [
            tcp_segment(1.0, src, dst, 5000, 22, TcpFlags.SYN, seq=10),
            tcp_segment(1.1, src, dst, 5000, 22, TcpFlags.ACK, seq=11, ack=1),
            tcp_segment(1.2, src, dst, 5000, 22, TcpFlags.PSH | TcpFlags.ACK,
                        seq=11, payload=b"SSH-2.0-client\r\n"),
            udp_datagram(1.3, src, dst, 4000, 53, payload=b"q"),
        ]
        for pkt in pkts:
            gw_s.handle(pkt)
        gw_b.handle_batch(WireBatch.from_packets(pkts))
        assert out_b == out_s
        assert any(p.payload.startswith(b"SSH-2.0-OpenSSH") for p in out_b)
        assert _gateway_state(gw_b) == _gateway_state(gw_s)
        assert reg_b.snapshot()["counters"] == reg_s.snapshot()["counters"]

    def test_recover_destination_spans_segment_kinds(self):
        """last_match searches columnar and scalar NAT log segments alike."""
        gw, _, _, _ = _make_gateway()
        scalar_dst = TPOT_PREFIX.network | 5
        gw.handle(tcp_segment(1.0, SRC_NET | 1, scalar_dst, 5000, 22,
                              TcpFlags.SYN, seq=1))
        batch_dst = TPOT_PREFIX.network | 9
        gw.handle_batch(WireBatch.from_packets([
            tcp_segment(2.0, SRC_NET | 2, batch_dst, 6000, 80,
                        TcpFlags.SYN, seq=1)]))
        ports = [e.source_port for e in gw.nat_log]
        assert gw.recover_destination(5.0, ports[0]) == scalar_dst
        assert gw.recover_destination(5.0, ports[1]) == batch_dst
        assert gw.recover_destination(0.5, ports[0]) is None


class TestScenarioReactParity:
    """Flipping ``use_batch_react`` must not change a single byte of a
    scenario run: records, ground truth, honeypot state and counters are
    identical — reaction is a pure sink of the emission stream."""

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.sim.scenario import PaperScenario, ScenarioConfig

        def _run(use_batch_react):
            config = ScenarioConfig(
                seed=23, duration_days=14, volume_scale=1e-4, n_tail=20,
                phase1_day=2, phase2_day=4, phase3_day=6,
                specific_start_day=8, tls_offset_days=3,
                tpot_hitlist_offset_days=5, tpot_tls_offset_days=7,
                udp_hitlist_offset_days=2, withdraw_after_days=9,
                use_batch_react=use_batch_react,
            )
            scenario = PaperScenario(config)
            for day in range(14):
                scenario.run_day(day)
            return scenario

        return _run(True), _run(False)

    def test_records_identical(self, pair):
        batch, scalar = pair
        ra = batch.telescope.capturer.to_records()
        rb = scalar.telescope.capturer.to_records()
        assert len(ra) == len(rb)
        for column in ("ts", "src_hi", "src_lo", "dst_hi", "dst_lo",
                       "proto", "sport", "dport"):
            assert np.array_equal(getattr(ra, column),
                                  getattr(rb, column)), column

    def test_honeypot_state_identical(self, pair):
        batch, scalar = pair
        assert batch.telescope.response_count == scalar.telescope.response_count
        nta_b, nta_s = batch.telescope, scalar.telescope
        assert nta_b.twinklenet.rx_count == nta_s.twinklenet.rx_count
        assert nta_b.twinklenet.tx_count == nta_s.twinklenet.tx_count
        assert nta_b.twinklenet.sessions_evicted == \
            nta_s.twinklenet.sessions_evicted
        assert nta_b.twinklenet._sessions == nta_s.twinklenet._sessions
        assert set(nta_b.gateways) == set(nta_s.gateways)
        for name in nta_b.gateways:
            gw_b, gw_s = nta_b.gateways[name], nta_s.gateways[name]
            assert list(gw_b.nat_log) == list(gw_s.nat_log)
            assert gw_b._next_port == gw_s._next_port
            assert gw_b.rx_count == gw_s.rx_count
            assert gw_b.tx_count == gw_s.tx_count
            assert gw_b.tpot.interactions == gw_s.tpot.interactions


class TestDnatLog:
    def test_list_semantics(self):
        log = DnatLog()
        assert log == [] and len(log) == 0 and not log
        entries = [DnatLogEntry(float(i), 100 + i, 32768 + i) for i in range(3)]
        for e in entries:
            log.append(e)
        log.extend_columns(
            np.asarray([3.0, 4.0]), np.asarray([0, 0], dtype=np.uint64),
            np.asarray([200, 201], dtype=np.uint64),
            np.asarray([40000, 40001]))
        entries += [DnatLogEntry(3.0, 200, 40000), DnatLogEntry(4.0, 201, 40001)]
        assert len(log) == 5
        assert list(log) == entries
        assert list(reversed(log)) == entries[::-1]
        assert log[0] == entries[0] and log[-1] == entries[-1]
        assert log[1:3] == entries[1:3]
        assert log == entries
        with pytest.raises(IndexError):
            log[5]
