"""Tests for honeyprefix configuration and deployment."""

import pytest

from repro.core.features import FEATURE_CODES, Feature, combo_label
from repro.core.honeyprefix import (
    Honeyprefix,
    HoneyprefixConfig,
    IcmpMode,
    WEB_PORTS,
    deploy_addresses,
    standard_configs,
)
from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6, TCP, UDP

PREFIX = IPv6Prefix.parse("2001:db8:100::/48")


class TestConfigValidation:
    def test_aliased_requires_full_icmp(self):
        with pytest.raises(ValueError):
            HoneyprefixConfig(name="x", aliased=True,
                              icmp_mode=IcmpMode.ADDRESSES)

    def test_tls_sub_requires_subdomains(self):
        with pytest.raises(ValueError):
            HoneyprefixConfig(name="x", tls_sub=True)

    def test_subdomains_require_domains(self):
        with pytest.raises(ValueError):
            HoneyprefixConfig(name="x", subdomains=True)

    def test_announce_length_bounds(self):
        with pytest.raises(ValueError):
            HoneyprefixConfig(name="x", announce_length=47)
        with pytest.raises(ValueError):
            HoneyprefixConfig(name="x", announce_length=65)

    def test_bad_tpot(self):
        with pytest.raises(ValueError):
            HoneyprefixConfig(name="x", tpot=3)

    def test_planned_features(self):
        config = HoneyprefixConfig(
            name="x", icmp_mode=IcmpMode.ADDRESSES, udp_ports=(53,),
            domains=("com",), tls_root=True,
        )
        features = config.planned_features
        assert Feature.BGP in features
        assert Feature.ICMP in features
        assert Feature.UDP in features
        assert Feature.DOMAIN in features
        assert Feature.TLS_ROOT in features
        assert Feature.TCP not in features

    def test_announce_fails_drops_bgp(self):
        config = HoneyprefixConfig(name="x", announce_fails=True)
        assert Feature.BGP not in config.planned_features


class TestStandardConfigs:
    def test_count_is_27(self):
        assert len(standard_configs()) == 27

    def test_rdns_variant_adds_28th(self):
        configs = standard_configs(include_rdns=True)
        assert len(configs) == 28
        assert configs[-1].rdns

    def test_names_unique(self):
        names = [c.name for c in standard_configs()]
        assert len(set(names)) == len(names)

    def test_specific_lengths(self):
        lengths = sorted(
            c.announce_length for c in standard_configs()
            if c.name.startswith("H_Specific")
        )
        assert lengths == list(range(49, 65))

    def test_tpots_are_aliased_with_domains(self):
        configs = {c.name: c for c in standard_configs()}
        for name in ("H_TPot1", "H_TPot2"):
            config = configs[name]
            assert config.aliased and config.tpot
            assert config.domains == ("com", "com")
            assert config.hitlist_manual

    def test_h_tcp_announce_fails(self):
        configs = {c.name: c for c in standard_configs()}
        assert configs["H_TCP"].announce_fails

    def test_bgp_only_have_no_features(self):
        configs = {c.name: c for c in standard_configs()}
        assert configs["H_BGP1"].planned_features == frozenset({Feature.BGP})


class TestDeployAddresses:
    def test_icmp_addresses_mode(self, rng):
        config = HoneyprefixConfig(name="x", icmp_mode=IcmpMode.ADDRESSES)
        hp = deploy_addresses(config, PREFIX, rng)
        icmp = hp.icmp_addresses()
        assert PREFIX.network | 1 in icmp
        assert len(icmp) == 3  # ::1 plus two random

    def test_icmp_single_random_when_combined(self, rng):
        config = HoneyprefixConfig(
            name="x", icmp_mode=IcmpMode.ADDRESSES,
            tcp_services=(("web", WEB_PORTS),), udp_ports=(53,),
        )
        hp = deploy_addresses(config, PREFIX, rng)
        assert len(hp.icmp_addresses()) == 2  # ::1 plus one random

    def test_aliased_responds_everywhere_to_icmp(self, rng):
        config = HoneyprefixConfig(name="x", aliased=True,
                                   icmp_mode=IcmpMode.FULL)
        hp = deploy_addresses(config, PREFIX, rng)
        assert hp.responds(PREFIX.network | 0xABCDEF, ICMPV6, None)
        assert not hp.responds(PREFIX.network | 0xABCDEF, TCP, 80)

    def test_tcp_service_binding(self, rng):
        config = HoneyprefixConfig(name="x",
                                   tcp_services=(("web", (80, 443)),))
        hp = deploy_addresses(config, PREFIX, rng)
        addr = next(a for a, b in hp.responsive.items() if (TCP, 80) in b)
        assert hp.responds(addr, TCP, 443)
        assert not hp.responds(addr, TCP, 22)
        assert not hp.responds(addr, ICMPV6, None)

    def test_udp_binding(self, rng):
        config = HoneyprefixConfig(name="x", udp_ports=(53, 123))
        hp = deploy_addresses(config, PREFIX, rng)
        addr = next(a for a, b in hp.responsive.items() if (UDP, 53) in b)
        assert hp.responds(addr, UDP, 123)

    def test_add_responsive_rejects_outside(self, rng):
        hp = deploy_addresses(HoneyprefixConfig(name="x"), PREFIX, rng)
        with pytest.raises(ValueError):
            hp.add_responsive(1, ICMPV6, None)

    def test_announced_prefix_for_specific(self, rng):
        config = HoneyprefixConfig(name="x", announce_length=56)
        hp = deploy_addresses(config, PREFIX, rng)
        assert hp.announced_prefix.length == 56
        assert hp.announced_prefix.network == PREFIX.network


class TestTimeline:
    def test_record_and_query(self, rng):
        hp = deploy_addresses(HoneyprefixConfig(name="x"), PREFIX, rng)
        hp.record(10.0, Feature.BGP)
        hp.record(50.0, Feature.TLS_ROOT)
        assert hp.active_features(30.0) == frozenset({Feature.BGP})
        assert hp.feature_time(Feature.TLS_ROOT) == 50.0
        assert hp.feature_time(Feature.DOMAIN) is None


class TestFeatureCodes:
    def test_all_features_have_codes(self):
        assert set(FEATURE_CODES) == set(Feature)

    def test_combo_label_order(self):
        label = combo_label({Feature.TLS_SUB, Feature.ICMP, Feature.OTHER,
                             Feature.SUBDOMAIN})
        assert label == "ISsO"

    def test_combo_label_empty(self):
        assert combo_label(set()) == ""
