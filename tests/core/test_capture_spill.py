"""Capture spill: bounded-memory chunk sealing and streaming freeze.

A spill-enabled :class:`~repro.core.capture.PacketCapturer` must produce
byte-identical ``to_records()``/``to_truth()`` output to a plain one, seal
segments atomically with verified checksums, and keep the repeated-freeze
and capture-after-freeze contracts the shared test fixtures rely on.
"""

import numpy as np
import pytest

from repro.analysis.records import PacketRecords
from repro.core.capture import (
    CAPTURE_COLUMNS,
    ChunkSpill,
    PacketCapturer,
    SpillIntegrityError,
)
from repro.net.batch import PacketBatch


def _batch(rng, n, with_origin=True):
    return PacketBatch.from_columns(
        rng.uniform(0, 1000, n),
        rng.integers(0, 1 << 60, n, dtype=np.uint64),
        rng.integers(0, 1 << 60, n, dtype=np.uint64),
        rng.integers(0, 1 << 60, n, dtype=np.uint64),
        rng.integers(0, 1 << 60, n, dtype=np.uint64),
        rng.integers(0, 255, n, dtype=np.uint8),
        rng.integers(0, 65535, n, dtype=np.uint16),
        rng.integers(0, 65535, n, dtype=np.uint16),
        origin=(rng.integers(0, 50, n, dtype=np.int64)
                if with_origin else None),
    )


def _assert_records_equal(a: PacketRecords, b: PacketRecords):
    assert len(a) == len(b)
    for col in CAPTURE_COLUMNS:
        assert np.array_equal(getattr(a, col), getattr(b, col)), col


class TestSpillEquivalence:
    @pytest.mark.parametrize("budget", [1, 2048, 1 << 30])
    def test_records_and_truth_match_plain_capturer(self, tmp_path, budget):
        rng = np.random.default_rng(0)
        plain = PacketCapturer("plain")
        spilly = PacketCapturer("spilly")
        spilly.enable_spill(tmp_path, budget_bytes=budget)
        for i in range(12):
            batch = _batch(rng, int(rng.integers(1, 200)),
                           with_origin=bool(i % 2))
            plain.capture_batch(batch)
            spilly.capture_batch(batch)
        assert len(plain) == len(spilly)
        _assert_records_equal(plain.to_records(), spilly.to_records())
        ta, tb = plain.to_truth(), spilly.to_truth()
        assert len(ta) == len(tb)
        assert np.array_equal(ta.origin, tb.origin)
        assert np.array_equal(ta.ts, tb.ts)

    def test_tiny_budget_actually_spills(self, tmp_path):
        rng = np.random.default_rng(1)
        cap = PacketCapturer("t")
        cap.enable_spill(tmp_path, budget_bytes=1)
        for _ in range(5):
            cap.capture_batch(_batch(rng, 100))
        assert cap.spill_enabled
        assert cap.spilled_rows > 0
        assert any(p.suffix == ".npz" for p in tmp_path.iterdir())
        # freeze consumes and clears the analysis spill
        records = cap.to_records()
        assert len(records) == 500
        assert cap.spilled_rows == 0

    def test_repeated_freeze_and_capture_after_freeze(self, tmp_path):
        rng = np.random.default_rng(2)
        cap = PacketCapturer("r")
        cap.enable_spill(tmp_path, budget_bytes=1)
        first = _batch(rng, 150)
        cap.capture_batch(first)
        r1 = cap.to_records()
        r2 = cap.to_records()
        _assert_records_equal(r1, r2)
        second = _batch(rng, 70)
        cap.capture_batch(second)
        r3 = cap.to_records()
        assert len(r3) == 220
        assert np.array_equal(r3.ts[:150], first.ts)
        assert np.array_equal(r3.ts[150:], second.ts)

    def test_len_counts_frozen_spilled_and_buffered(self, tmp_path):
        rng = np.random.default_rng(3)
        cap = PacketCapturer("n")
        cap.enable_spill(tmp_path, budget_bytes=1)
        cap.capture_batch(_batch(rng, 80))
        assert len(cap) == 80
        cap.to_records()
        cap.capture_batch(_batch(rng, 20))
        assert len(cap) == 100


class TestDrainDayRecords:
    def test_drain_empties_and_preserves_order(self):
        rng = np.random.default_rng(4)
        cap = PacketCapturer("d")
        b1, b2 = _batch(rng, 30), _batch(rng, 40)
        cap.capture_batch(b1)
        cap.capture_batch(b2)
        day = cap.drain_day_records()
        assert len(day) == 70
        assert np.array_equal(day.ts, np.concatenate([b1.ts, b2.ts]))
        assert len(cap) == 0
        assert len(cap.drain_day_records()) == 0

    def test_drain_flushes_scalar_tail(self):
        from repro.net.packet import icmp_echo_request

        cap = PacketCapturer("s")
        cap.capture(icmp_echo_request(1.0, 7, 9))
        day = cap.drain_day_records()
        assert len(day) == 1 and day.ts[0] == 1.0


class TestChunkSpillIntegrity:
    def test_corrupted_segment_detected(self, tmp_path):
        rng = np.random.default_rng(5)
        spill = ChunkSpill(tmp_path, "seg")
        spill.spill([_batch(rng, 50, with_origin=False)])
        segment = next(p for p in tmp_path.iterdir()
                       if p.suffix == ".npz")
        segment.write_bytes(segment.read_bytes()[:-4] + b"XXXX")
        with pytest.raises(SpillIntegrityError):
            list(spill.iter_batches())

    def test_roundtrip_and_clear(self, tmp_path):
        rng = np.random.default_rng(6)
        batch = _batch(rng, 64)
        spill = ChunkSpill(tmp_path, "rt")
        assert spill.spill([batch]) == 64
        [back] = list(spill.iter_batches())
        for col in CAPTURE_COLUMNS:
            assert np.array_equal(getattr(back, col), getattr(batch, col))
        assert np.array_equal(back.origin, batch.origin)
        assert spill.manifest_path.exists()
        spill.clear()
        assert spill.rows == 0
        assert list(tmp_path.iterdir()) == []

    def test_empty_spill_writes_nothing(self, tmp_path):
        spill = ChunkSpill(tmp_path, "e")
        assert spill.spill([]) == 0
        assert spill.segments == 0

    def test_invalid_budget_rejected(self, tmp_path):
        cap = PacketCapturer("b")
        with pytest.raises(ValueError):
            cap.enable_spill(tmp_path, budget_bytes=0)
