"""Tests for the T-Pot stack: containers, DNAT gateway, log recovery."""

import pytest

from repro.core.tpot import (
    DnatGateway,
    TPOT1_CONTAINERS,
    TPOT2_CONTAINERS,
    TPotInstance,
)
from repro.net.addr import IPv6Prefix
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)

PREFIX = IPv6Prefix.parse("2001:db8:300::/48")
SRC = IPv6Prefix.parse("2001:db8:f00::/48").network | 5


@pytest.fixture
def stack():
    tpot = TPotInstance("tpot1", TPOT1_CONTAINERS)
    out = []
    gateway = DnatGateway(PREFIX, tpot, transmit=out.append)
    return gateway, tpot, out


class TestContainers:
    def test_table5_tpot1_ports(self):
        tpot = TPotInstance("tpot1", TPOT1_CONTAINERS)
        for port in (22, 23, 25, 80, 443, 6379, 5555, 1433, 27017):
            assert tpot.listens(TCP, port)
        for port in (19, 53, 123, 161, 1900, 69, 5000):
            assert tpot.listens(UDP, port)
        assert not tpot.listens(TCP, 9200)  # elasticpot is TPot2-only

    def test_table5_tpot2_differs(self):
        tpot = TPotInstance("tpot2", TPOT2_CONTAINERS)
        assert tpot.listens(TCP, 9200)       # elasticpot
        assert tpot.listens(TCP, 11112)      # dicompot
        assert tpot.listens(UDP, 5060)       # sentrypeer
        assert not tpot.listens(TCP, 22)     # no cowrie on TPot2
        assert not tpot.listens(TCP, 6379)   # no redis honeypot

    def test_open_ports_sorted(self):
        tpot = TPotInstance("tpot1", TPOT1_CONTAINERS)
        ports = tpot.open_ports(TCP)
        assert list(ports) == sorted(ports)


class TestTPotInteraction:
    def test_handshake_then_banner(self):
        tpot = TPotInstance("tpot1", TPOT1_CONTAINERS)
        target = PREFIX.network | 1
        synack = tpot.handle(tcp_segment(1.0, SRC, target, 4000, 22,
                                         TcpFlags.SYN, seq=9))
        assert TcpFlags(synack[0].flags) == TcpFlags.SYN | TcpFlags.ACK
        banner = tpot.handle(tcp_segment(1.1, SRC, target, 4000, 22,
                                         TcpFlags.ACK, seq=10))
        assert banner and banner[0].payload.startswith(b"SSH-2.0")
        assert tpot.interactions[0].container == "cowrie"

    def test_data_logged(self):
        tpot = TPotInstance("tpot1", TPOT1_CONTAINERS)
        target = PREFIX.network | 1
        tpot.handle(tcp_segment(1.0, SRC, target, 4000, 80,
                                TcpFlags.PSH | TcpFlags.ACK,
                                payload=b"GET / HTTP/1.1"))
        assert tpot.interactions[-1].data == b"GET / HTTP/1.1"
        assert tpot.interactions[-1].container == "snare"

    def test_udp_interaction(self):
        tpot = TPotInstance("tpot1", TPOT1_CONTAINERS)
        out = tpot.handle(udp_datagram(1.0, SRC, PREFIX.network | 1,
                                       4000, 53, b"q"))
        assert out
        assert tpot.interactions[-1].container == "ddospot"

    def test_closed_port_no_response(self):
        tpot = TPotInstance("tpot1", TPOT1_CONTAINERS)
        assert tpot.handle(tcp_segment(1.0, SRC, PREFIX.network | 1,
                                       4000, 9999, TcpFlags.SYN)) == []


class TestDnatGateway:
    def test_icmp_whole_prefix(self, stack):
        gateway, _, out = stack
        gateway.handle(icmp_echo_request(1.0, SRC, PREFIX.network | 0xBEEF))
        assert out[-1].sport == int(IcmpType.ECHO_REPLY)
        assert out[-1].src == PREFIX.network | 0xBEEF

    def test_dnat_translates_and_logs(self, stack):
        gateway, tpot, out = stack
        original = PREFIX.network | 0x1234
        gateway.handle(tcp_segment(5.0, SRC, original, 4000, 22,
                                   TcpFlags.SYN))
        entry = gateway.nat_log[0]
        assert entry.original_dst == original
        # T-Pot saw the translated ::1 destination.
        assert tpot is gateway.tpot
        assert out[-1].src == original  # reply un-translated

    def test_reply_restores_scanner_port(self, stack):
        gateway, _, out = stack
        gateway.handle(tcp_segment(5.0, SRC, PREFIX.network | 7, 4321, 22,
                                   TcpFlags.SYN))
        assert out[-1].dport == 4321
        assert out[-1].dst == SRC

    def test_flow_reuses_nat_port(self, stack):
        gateway, _, out = stack
        target = PREFIX.network | 7
        gateway.handle(tcp_segment(5.0, SRC, target, 4321, 22, TcpFlags.SYN))
        gateway.handle(tcp_segment(5.1, SRC, target, 4321, 22, TcpFlags.ACK,
                                   seq=1))
        assert len(gateway.nat_log) == 1

    def test_recover_destination(self, stack):
        gateway, _, _ = stack
        target = PREFIX.network | 0xAA
        gateway.handle(tcp_segment(5.0, SRC, target, 4321, 22, TcpFlags.SYN))
        port = gateway.nat_log[0].source_port
        assert gateway.recover_destination(6.0, port) == target
        assert gateway.recover_destination(4.0, port) is None
        assert gateway.recover_destination(6.0, 1) is None

    def test_closed_port_captured_but_silent(self, stack):
        gateway, _, out = stack
        gateway.handle(tcp_segment(5.0, SRC, PREFIX.network | 1, 4000, 9999,
                                   TcpFlags.SYN))
        assert out == []
        assert gateway.nat_log == []

    def test_out_of_prefix_ignored(self, stack):
        gateway, _, out = stack
        gateway.handle(icmp_echo_request(1.0, SRC, 42))
        assert out == []

    def test_responds_oracle(self, stack):
        gateway, _, _ = stack
        assert gateway.responds(PREFIX.network | 5, ICMPV6, None)
        assert gateway.responds(PREFIX.network | 5, TCP, 22)
        assert not gateway.responds(PREFIX.network | 5, TCP, 9999)
        assert not gateway.responds(42, ICMPV6, None)
