"""Tests for DNS records and name validation."""

import pytest

from repro.dns.records import ResourceRecord, RRType, validate_name
from repro.net.addr import parse_address


class TestValidateName:
    def test_lowercases(self):
        assert validate_name("WWW.Example.COM") == "www.example.com"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_name("")

    def test_rejects_long_name(self):
        with pytest.raises(ValueError):
            validate_name("a" * 254)

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError):
            validate_name("bad..example.com")
        with pytest.raises(ValueError):
            validate_name("-lead.example.com")
        with pytest.raises(ValueError):
            validate_name("trail-.example.com")

    def test_underscore_allowed(self):
        assert validate_name("_acme-challenge.example.com")

    def test_rejects_long_label(self):
        with pytest.raises(ValueError):
            validate_name("a" * 64 + ".com")


class TestResourceRecord:
    def test_aaaa_requires_int(self):
        with pytest.raises(TypeError):
            ResourceRecord("a.example.com", RRType.AAAA, "2001:db8::1")

    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.example.com", RRType.TXT, "x", ttl=-1)

    def test_render_aaaa(self):
        record = ResourceRecord("a.example.com", RRType.AAAA,
                                parse_address("2001:db8::1"))
        assert record.render() == "a.example.com. 3600 IN AAAA 2001:db8::1"

    def test_render_txt_quotes(self):
        record = ResourceRecord("a.example.com", RRType.TXT, "token")
        assert record.render().endswith('TXT "token"')

    def test_name_normalized(self):
        record = ResourceRecord("WWW.Example.com", RRType.TXT, "x")
        assert record.name == "www.example.com"
