"""Tests for the ip6.arpa reverse tree."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.reverse import ReverseZone, nibble_name, nibble_prefix_name
from repro.net.addr import MAX_ADDRESS, parse_address


class TestNibbleNames:
    def test_known_value(self):
        addr = parse_address("2001:db8::1")
        name = nibble_name(addr)
        assert name.endswith("8.b.d.0.1.0.0.2.ip6.arpa")
        assert name.startswith("1.0.0.0.")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            nibble_name(-1)

    def test_prefix_name(self):
        prefix = parse_address("2001:db8::")
        assert nibble_prefix_name(prefix, 32) == "8.b.d.0.1.0.0.2.ip6.arpa"

    def test_prefix_name_rejects_unaligned(self):
        with pytest.raises(ValueError):
            nibble_prefix_name(0, 33)

    @given(st.integers(min_value=0, max_value=MAX_ADDRESS))
    def test_name_has_32_nibbles(self, addr):
        name = nibble_name(addr)
        assert len(name.split(".")) == 34  # 32 nibbles + ip6 + arpa


class TestWalk:
    @pytest.fixture
    def zone(self):
        zone = ReverseZone()
        zone.add_ptr(parse_address("2001:db8::1"), "a.example", at=10.0)
        zone.add_ptr(parse_address("2001:db8::ff"), "b.example", at=10.0)
        zone.add_ptr(parse_address("2001:db9::1"), "c.example", at=10.0)
        return zone

    def test_node_exists(self, zone):
        assert zone.node_exists(parse_address("2001:db8::"), 32, at=20.0)
        assert not zone.node_exists(parse_address("2001:dba::"), 32, at=20.0)

    def test_node_exists_time_gated(self, zone):
        assert not zone.node_exists(parse_address("2001:db8::"), 32, at=5.0)

    def test_walk_finds_all_in_prefix(self, zone):
        found = list(zone.walk(parse_address("2001:db8::"), 32, at=20.0))
        assert found == [parse_address("2001:db8::1"),
                         parse_address("2001:db8::ff")]

    def test_walk_prunes_other_prefixes(self, zone):
        found = list(zone.walk(parse_address("2001:db9::"), 32, at=20.0))
        assert found == [parse_address("2001:db9::1")]

    def test_walk_budget(self, zone):
        assert list(zone.walk(parse_address("2001:db8::"), 32, at=20.0,
                              max_queries=3)) == []

    def test_walk_empty_zone(self):
        zone = ReverseZone()
        assert list(zone.walk(0, 0, at=1e9)) == []

    def test_walk_whole_tree(self, zone):
        found = list(zone.walk(0, 0, at=20.0))
        assert len(found) == 3

    def test_lookup_ptr(self, zone):
        assert zone.lookup_ptr(parse_address("2001:db8::1"), at=20.0) == [
            "a.example"
        ]

    def test_add_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ReverseZone().add_ptr(-1, "x.example")
