"""Tests for the resolver."""

import pytest

from repro.dns.records import RRType
from repro.dns.registry import Registrar, TldRegistry
from repro.dns.resolver import Resolver
from repro.dns.reverse import ReverseZone


@pytest.fixture
def setup():
    registrar = Registrar()
    registrar.add_tld(TldRegistry("com"))
    registrar.register_domain("example.com", at=100.0)
    registrar.set_aaaa("example.com", 10, at=100.0)
    registrar.set_aaaa("www.example.com", 20, at=500.0)
    reverse = ReverseZone()
    reverse.add_ptr(10, "example.com", at=100.0)
    return Resolver([registrar], reverse), registrar


def test_resolve_aaaa(setup):
    resolver, _ = setup
    assert resolver.resolve_aaaa("example.com", at=200.0) == [10]


def test_time_awareness(setup):
    resolver, _ = setup
    assert resolver.resolve_aaaa("www.example.com", at=200.0) == []
    assert resolver.resolve_aaaa("www.example.com", at=600.0) == [20]


def test_zone_creation_time_gates(setup):
    resolver, _ = setup
    assert resolver.resolve_aaaa("example.com", at=50.0) == []


def test_unknown_name(setup):
    resolver, _ = setup
    assert resolver.resolve("nope.other.com", RRType.AAAA, 1e9) == []


def test_reverse_resolution(setup):
    resolver, _ = setup
    assert resolver.resolve_ptr(10, at=200.0) == ["example.com"]
    assert resolver.resolve_ptr(10, at=50.0) == []
    assert resolver.resolve_ptr(11, at=200.0) == []


def test_query_counter(setup):
    resolver, _ = setup
    before = resolver.query_count
    resolver.resolve_aaaa("example.com", at=200.0)
    resolver.resolve_ptr(10, at=200.0)
    assert resolver.query_count == before + 2


def test_resolver_without_reverse_zone():
    resolver = Resolver([])
    assert resolver.resolve_ptr(10, at=0.0) == []


def test_add_registrar():
    registrar = Registrar()
    registrar.add_tld(TldRegistry("org"))
    registrar.register_domain("x.org", at=0.0)
    registrar.set_aaaa("x.org", 7, at=0.0)
    resolver = Resolver()
    assert resolver.resolve_aaaa("x.org", at=10.0) == []
    resolver.add_registrar(registrar)
    assert resolver.resolve_aaaa("x.org", at=10.0) == [7]
