"""Tests for DNS zones."""

import pytest

from repro.dns.records import ResourceRecord, RRType
from repro.dns.zone import Zone


@pytest.fixture
def zone():
    return Zone("example.com", created_at=10.0)


def test_add_and_lookup(zone):
    zone.add(ResourceRecord("www.example.com", RRType.AAAA, 42))
    assert [r.value for r in zone.lookup("www.example.com", RRType.AAAA)] == [42]


def test_lookup_missing_returns_empty(zone):
    assert zone.lookup("nope.example.com", RRType.AAAA) == []


def test_lookup_out_of_zone_returns_empty(zone):
    assert zone.lookup("www.other.org", RRType.AAAA) == []


def test_add_rejects_out_of_zone(zone):
    with pytest.raises(ValueError):
        zone.add(ResourceRecord("www.other.org", RRType.AAAA, 42))


def test_apex_record_allowed(zone):
    zone.add(ResourceRecord("example.com", RRType.AAAA, 1))
    assert zone.lookup("example.com", RRType.AAAA)


def test_serial_increments(zone):
    start = zone.serial
    zone.add(ResourceRecord("www.example.com", RRType.AAAA, 42))
    assert zone.serial == start + 1
    zone.remove("www.example.com", RRType.AAAA)
    assert zone.serial == start + 2


def test_remove_counts(zone):
    zone.add(ResourceRecord("www.example.com", RRType.AAAA, 1))
    zone.add(ResourceRecord("www.example.com", RRType.AAAA, 2))
    assert zone.remove("www.example.com", RRType.AAAA) == 2
    assert zone.remove("www.example.com", RRType.AAAA) == 0


def test_remove_noop_does_not_bump_serial(zone):
    serial = zone.serial
    zone.remove("www.example.com", RRType.AAAA)
    assert zone.serial == serial


def test_names_and_records(zone):
    zone.add(ResourceRecord("www.example.com", RRType.AAAA, 1))
    zone.add(ResourceRecord("mail.example.com", RRType.AAAA, 2))
    assert zone.names() == {"www.example.com", "mail.example.com"}
    assert len(zone.records()) == 2


def test_render_is_stable(zone):
    zone.add(ResourceRecord("www.example.com", RRType.AAAA, 1))
    zone.add(ResourceRecord("mail.example.com", RRType.AAAA, 2))
    text = zone.render()
    assert text.startswith("$ORIGIN example.com.")
    assert text.index("mail.example.com") < text.index("www.example.com")
