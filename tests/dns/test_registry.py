"""Tests for TLD registries and the registrar."""

import pytest

from repro._util import DAY
from repro.dns.registry import Registrar, TldRegistry


@pytest.fixture
def registrar():
    r = Registrar()
    r.add_tld(TldRegistry("com"))
    r.add_tld(TldRegistry("net"))
    return r


class TestTldRegistry:
    def test_register_and_list(self):
        tld = TldRegistry("com")
        tld.register("example.com", at=100.0, registrant="x")
        assert [r.domain for r in tld.registrations()] == ["example.com"]

    def test_rejects_duplicate(self):
        tld = TldRegistry("com")
        tld.register("example.com", at=100.0, registrant="x")
        with pytest.raises(ValueError):
            tld.register("example.com", at=200.0, registrant="y")

    def test_rejects_wrong_tld(self):
        tld = TldRegistry("com")
        with pytest.raises(ValueError):
            tld.register("example.net", at=100.0, registrant="x")

    def test_rejects_subdomain(self):
        tld = TldRegistry("com")
        with pytest.raises(ValueError):
            tld.register("www.example.com", at=100.0, registrant="x")

    def test_rejects_multi_label_tld(self):
        with pytest.raises(ValueError):
            TldRegistry("co.uk")

    def test_publication_is_next_daily_cut(self):
        tld = TldRegistry("com")
        assert tld.publication_time(100.0) == DAY
        assert tld.publication_time(DAY + 1) == 2 * DAY

    def test_zone_file_visibility(self):
        tld = TldRegistry("com")
        tld.register("example.com", at=100.0, registrant="x")
        assert tld.zone_file_at(0.5 * DAY) == set()
        assert tld.zone_file_at(1.5 * DAY) == {"example.com"}

    def test_new_domains_window(self):
        tld = TldRegistry("com")
        tld.register("example.com", at=100.0, registrant="x")
        assert tld.new_domains(0.0, 0.5 * DAY) == {}
        assert tld.new_domains(0.5 * DAY, 2 * DAY) == {"example.com": DAY}
        assert tld.new_domains(2 * DAY, 3 * DAY) == {}


class TestRegistrar:
    def test_register_creates_zone(self, registrar):
        zone = registrar.register_domain("example.com", at=100.0)
        assert zone.origin == "example.com"
        assert registrar.zone_for("www.example.com") is zone

    def test_unknown_tld_rejected(self, registrar):
        with pytest.raises(KeyError):
            registrar.register_domain("example.org", at=100.0)

    def test_set_aaaa_and_txt(self, registrar):
        registrar.register_domain("example.com", at=100.0)
        registrar.set_aaaa("www.example.com", 42, at=200.0)
        registrar.set_txt("_acme-challenge.example.com", "tok", at=200.0)
        zone = registrar.zone_for("example.com")
        from repro.dns.records import RRType

        assert zone.lookup("www.example.com", RRType.AAAA)[0].value == 42
        assert registrar.remove_txt("_acme-challenge.example.com") == 1

    def test_set_aaaa_unknown_zone(self, registrar):
        with pytest.raises(KeyError):
            registrar.set_aaaa("www.unknown.com", 42, at=0.0)

    def test_zone_for_unknown(self, registrar):
        assert registrar.zone_for("www.unknown.com") is None

    def test_tlds_property(self, registrar):
        assert set(registrar.tlds) == {"com", "net"}
