"""Tests for worker-telemetry fan-in: registry merge and span adoption."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
)


def _worker_snapshot(label: float, observations):
    """Simulate one worker's registry after some work."""
    registry = MetricsRegistry()
    for value in observations:
        registry.counter("work.items").inc()
        registry.timing("work.stage").observe(value)
        registry.histogram("work.latency", edges=[0.1, 1.0]).observe(value)
    registry.gauge("work.last_label").set(label)
    return registry.snapshot()


class TestRegistryMerge:
    def test_two_workers_match_single_process(self):
        """Merging two worker snapshots equals recording it all locally."""
        merged = MetricsRegistry()
        merged.merge(_worker_snapshot(1, [0.05, 0.5]))
        merged.merge(_worker_snapshot(2, [2.0]))

        single = MetricsRegistry()
        for value in (0.05, 0.5, 2.0):
            single.counter("work.items").inc()
            single.timing("work.stage").observe(value)
            single.histogram("work.latency", edges=[0.1, 1.0]).observe(value)
        single.gauge("work.last_label").set(2)

        assert merged.snapshot() == single.snapshot()

    def test_merge_is_associative(self):
        # Powers of two keep the float sums exact, so associativity holds
        # bitwise, not just approximately.
        snaps = [_worker_snapshot(i, [float(2 ** i)]) for i in range(3)]
        left = MetricsRegistry().merge(snaps[0]).merge(snaps[1])
        left.merge(snaps[2])
        right = MetricsRegistry().merge(snaps[1]).merge(snaps[2])
        combined = MetricsRegistry().merge(snaps[0]).merge(right)
        assert left.snapshot() == combined.snapshot()

    def test_merge_registry_object(self):
        worker = MetricsRegistry()
        worker.counter("n").inc(5)
        parent = MetricsRegistry()
        parent.counter("n").inc(2)
        assert parent.merge(worker).snapshot()["counters"]["n"] == 7

    def test_timing_min_max_fold(self):
        a = MetricsRegistry()
        a.timing("t").observe(1.0)
        b = MetricsRegistry()
        b.timing("t").observe(3.0)
        merged = MetricsRegistry().merge(a).merge(b)
        stats = merged.snapshot()["timings"]["t"]
        assert stats == {"count": 2, "total": 4.0, "mean": 2.0,
                         "min": 1.0, "max": 3.0}

    def test_histogram_edge_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.histogram("h", edges=[1.0, 2.0]).observe(1.5)
        worker = MetricsRegistry()
        worker.histogram("h", edges=[1.0, 5.0]).observe(1.5)
        with pytest.raises(ValueError, match="different bucket edges"):
            parent.merge(worker)

    def test_empty_merge_is_noop(self):
        parent = MetricsRegistry()
        parent.counter("n").inc()
        before = parent.snapshot()
        parent.merge(MetricsRegistry())
        assert parent.snapshot() == before

    def test_null_registry_merge_is_inert(self):
        assert NULL_REGISTRY.merge(_worker_snapshot(0, [1.0])) is NULL_REGISTRY
        assert NULL_REGISTRY.snapshot()["counters"] == {}


class TestSpanAdoption:
    def _worker_spans(self):
        tracer = Tracer()
        with tracer.span("section", experiment="table4"):
            with tracer.span("inner"):
                pass
        return tracer.export_spans()

    def test_exported_spans_are_plain_dicts(self):
        spans = self._worker_spans()
        assert all(isinstance(s, dict) for s in spans)
        names = {s["name"] for s in spans}
        assert names == {"section", "inner"}

    def test_adopt_reparents_under_executor(self):
        parent = Tracer()
        with parent.span("executor") as root:
            parent.adopt(self._worker_spans(), parent=root)
        by_name = {s.name: s for s in parent.spans}
        section = by_name["section"]
        inner = by_name["inner"]
        assert section.parent_id == by_name["executor"].span_id
        assert inner.parent_id == section.span_id
        # The worker's root duration is charged to the executor span.
        assert by_name["executor"].child_time >= section.duration

    def test_adopted_ids_never_collide(self):
        parent = Tracer()
        with parent.span("executor") as root:
            parent.adopt(self._worker_spans(), parent=root)
            parent.adopt(self._worker_spans(), parent=root)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))
        # Spans opened after adoption keep allocating fresh ids.
        with parent.span("after"):
            pass
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_adopt_nothing(self):
        tracer = Tracer()
        tracer.adopt([])
        assert tracer.spans == []

    def test_null_tracer_adopt_is_inert(self):
        NULL_TRACER.adopt(self._worker_spans())
        assert NULL_TRACER.spans == []
