"""Property and unit tests for the metrics layer (`repro.obs`).

The histogram's quantile estimator is checked against ``np.percentile`` on
randomized samples (the estimate must land within one bucket width of the
empirical percentile), snapshots must round-trip through JSON, and timers
must nest safely — including two live timers of the *same* name.
"""

import json
import math
import time
from bisect import bisect_left

import numpy as np
import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    StageTimer,
    Timing,
    get_registry,
    set_registry,
    use_registry,
)


def _bucket_width(edges, value):
    """Width of the bucket that owns ``value`` (inf for the open ends)."""
    i = bisect_left(edges, value)
    if i == 0 or i == len(edges):
        return float("inf")
    return edges[i] - edges[i - 1]


class TestHistogramQuantiles:
    @pytest.mark.parametrize("seed", range(5))
    def test_uniform_within_one_bucket_width(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.uniform(0.0, 10.0, size=500)
        edges = np.linspace(0.0, 10.0, 21)  # width 0.5, covers the support
        hist = Histogram("h", edges)
        for v in samples:
            hist.observe(float(v))
        for q in (0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            true = float(np.percentile(samples, q * 100))
            assert abs(hist.quantile(q) - true) <= 0.5 + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_lognormal_default_edges(self, seed):
        """With the default log-decade edges the bound is the width of the
        bucket owning the true percentile."""
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=-4.0, sigma=1.5, size=400)
        hist = Histogram("h")
        for v in samples:
            hist.observe(float(v))
        for q in (0.1, 0.5, 0.9):
            true = float(np.percentile(samples, q * 100))
            width = _bucket_width(hist.edges, true)
            assert abs(hist.quantile(q) - true) <= width + 1e-9

    def test_extreme_quantiles_clamp_to_observed(self):
        hist = Histogram("h", (1.0, 2.0, 4.0))
        for v in (0.3, 1.5, 3.0, 9.0):
            hist.observe(v)
        assert hist.quantile(0.0) == 0.3
        assert hist.quantile(1.0) == 9.0

    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))

    def test_single_observation(self):
        hist = Histogram("h", (1.0, 10.0))
        hist.observe(3.0)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 3.0

    def test_quantile_out_of_range_rejected(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)


class TestHistogramBuckets:
    def test_counts_partition_observations(self):
        rng = np.random.default_rng(0)
        hist = Histogram("h", (1.0, 2.0, 3.0))
        samples = rng.uniform(0.0, 4.0, size=200)
        for v in samples:
            hist.observe(float(v))
        assert sum(hist.counts) == hist.count == 200
        # bucket i is (edges[i-1], edges[i]]; the last bucket is overflow.
        assert hist.counts[0] == int(np.sum(samples <= 1.0))
        assert hist.counts[-1] == int(np.sum(samples > 3.0))

    def test_numpy_array_edges_accepted(self):
        # regression: `edges or DEFAULT_EDGES` raised on numpy arrays.
        hist = Histogram("h", np.linspace(0.0, 1.0, 5))
        hist.observe(0.4)
        assert hist.count == 1

    def test_unsorted_or_duplicate_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_registry_rejects_conflicting_edges(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        assert registry.histogram("h") is registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))


class TestSnapshotJsonRoundTrip:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("pkts").inc()
        registry.counter("pkts").inc(41)
        registry.counter("bytes").inc(2.5)
        registry.gauge("depth").set(7)
        registry.gauge("depth").dec(3)
        registry.timing("stage").observe(0.25)
        hist = registry.histogram("lat", (0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_counter_gauge_values(self):
        snap = self._populated().snapshot()
        assert snap["counters"] == {"bytes": 2.5, "pkts": 42}
        assert snap["gauges"] == {"depth": 4}

    def test_round_trip_identity(self):
        registry = self._populated()
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert json.loads(registry.to_json()) == snap

    def test_write_json(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text()) == registry.snapshot()

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.counter(name).inc()
        assert list(registry.snapshot()["counters"]) == \
            ["alpha", "mid", "zeta"]

    def test_render_table_lists_every_metric(self):
        registry = self._populated()
        table = registry.render_table()
        for name in ("pkts", "bytes", "depth", "stage", "lat"):
            assert name in table

    def test_reset(self):
        registry = self._populated()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "timings": {}, "histograms": {},
        }


class TestTimers:
    def test_timer_records_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("work"):
            time.sleep(0.01)
        stats = registry.timing("work")
        assert stats.count == 1
        assert stats.total >= 0.01
        assert stats.min == stats.max == stats.total

    def test_nested_distinct_names(self):
        registry = MetricsRegistry()
        with registry.timer("outer"):
            with registry.timer("inner"):
                time.sleep(0.005)
        assert registry.timing("outer").total >= registry.timing("inner").total
        assert registry.timing("inner").total >= 0.005

    def test_nested_same_name(self):
        """A same-name timer nested inside a live one records nothing: the
        outer timer's elapsed already covers it, so double-counting would
        overstate the stage's total."""
        registry = MetricsRegistry()
        with registry.timer("stage"):
            time.sleep(0.005)
            with registry.timer("stage"):
                time.sleep(0.002)
        stats = registry.timing("stage")
        assert stats.count == 1
        assert stats.total >= 0.007
        assert stats.active == 0

    def test_nested_same_name_no_double_count(self):
        """Regression: the nested span's time must not be added on top of
        the outer span's — total stays below the sum of both elapsed."""
        registry = MetricsRegistry()
        with registry.timer("stage"):
            with registry.timer("stage"):
                time.sleep(0.004)
        stats = registry.timing("stage")
        assert stats.count == 1
        # Double-counting would make total >= 2 * 0.004.
        assert stats.total < 0.008

    def test_sequential_same_name_still_counts(self):
        """Back-to-back (non-nested) same-name timers each record."""
        registry = MetricsRegistry()
        with registry.timer("stage"):
            pass
        with registry.timer("stage"):
            pass
        assert registry.timing("stage").count == 2

    def test_nested_different_names_both_record(self):
        registry = MetricsRegistry()
        with registry.timer("outer"):
            with registry.timer("inner"):
                pass
        assert registry.timing("outer").count == 1
        assert registry.timing("inner").count == 1

    def test_stage_timer_observes_on_exception(self):
        timing = Timing("t")
        with pytest.raises(RuntimeError):
            with StageTimer(timing):
                raise RuntimeError("boom")
        assert timing.count == 1

    def test_timing_snapshot_mean(self):
        timing = Timing("t")
        timing.observe(1.0)
        timing.observe(3.0)
        assert timing.snapshot() == {
            "count": 2, "total": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0,
        }


class TestActiveRegistry:
    def test_default_is_null(self):
        assert isinstance(get_registry(), MetricsRegistry)
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_null_metrics_are_inert_singletons(self):
        registry = NullRegistry()
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.inc(10)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        with registry.timer("t"):
            pass
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "timings": {}, "histograms": {},
        }
        assert math.isnan(registry.histogram("h").quantile(0.5))

    def test_use_registry_scopes_and_restores(self):
        registry = MetricsRegistry()
        before = get_registry()
        with use_registry(registry) as active:
            assert active is registry
            assert get_registry() is registry
        assert get_registry() is before

    def test_use_registry_restores_on_exception(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_set_registry_none_restores_null(self):
        previous = set_registry(MetricsRegistry())
        try:
            assert get_registry().enabled
            set_registry(None)
            assert get_registry() is NULL_REGISTRY
        finally:
            set_registry(previous)

    def test_counter_and_gauge_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.timing("t") is registry.timing("t")
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
