"""Journal tailing under crashes: torn lines, truncation, resumed runs.

The crash-tolerance satellite lives here: a run killed mid-day (via the
``abort_after_day`` hook) leaves a journal whose tail a progress stream
is holding open.  The stream must deliver every complete record, never
yield a torn final line, and — after the run resumes into the same
journal path — continue byte-compatibly: the resumed run replays its
full history, so the bytes before the tail's offset are identical and
the concatenated stream equals an uninterrupted run's journal.
"""

import json

import pytest

from repro.obs import (
    Journal,
    JournalError,
    JournalTail,
    read_journal,
    tail_journal,
    use_journal,
)
from repro.sim import ScenarioConfig, SimulationAborted, run_scenario

DAYS = 12
CADENCE = 4
ABORT_AFTER = 5


def _config():
    return ScenarioConfig(seed=19, duration_days=DAYS, volume_scale=1e-4,
                          n_tail=20, phase1_day=2, phase2_day=4,
                          phase3_day=6, specific_start_day=7,
                          withdraw_after_days=5)


def _emit_days(path, start, count):
    journal = Journal(str(path)) if start == 0 else None
    if journal is None:  # append to an existing journal file
        with open(path, "a", buffering=1) as stream:
            for day in range(start, start + count):
                stream.write(json.dumps(
                    {"v": 1, "type": "day", "day": day, "emitted": day * 10},
                    sort_keys=True) + "\n")
        return
    for day in range(count):
        journal.emit("day", day=day, emitted=day * 10)
    journal.close()


class TestPoll:
    def test_yields_only_newline_terminated_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_days(path, 0, 3)
        with open(path, "a") as stream:
            stream.write('{"v": 1, "type": "day", "day": 3, "emi')  # torn

        tail = JournalTail(path)
        records = tail.poll()
        assert [r["day"] for r in records] == [0, 1, 2]
        # The torn final line stays buffered — polled again, still absent.
        assert tail.poll() == []

        # Once the writer finishes the line, the record appears exactly once.
        with open(path, "a") as stream:
            stream.write('tted": 30}\n')
        assert [r["day"] for r in tail.poll()] == [3]
        assert tail.records_read == 4

    def test_complete_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_days(path, 0, 2)
        with open(path, "a") as stream:
            stream.write("definitely not json\n")  # complete ⇒ corruption
        tail = JournalTail(path)
        with pytest.raises(JournalError):
            tail.poll()

    def test_schema_violation_on_complete_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        (path).write_text('{"v": 1, "type": "day"}\n')  # missing fields
        with pytest.raises(JournalError):
            JournalTail(path).poll()

    def test_missing_file_is_just_empty(self, tmp_path):
        tail = JournalTail(tmp_path / "never-written.jsonl")
        assert tail.poll() == []

    def test_truncation_restarts_from_the_top(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_days(path, 0, 5)
        tail = JournalTail(path)
        assert len(tail.poll()) == 5

        # The file shrinks (a resumed run rewriting from scratch): the tail
        # resets and streams the new content from offset zero.
        _emit_days(path, 0, 2)
        records = tail.poll()
        assert [r["day"] for r in records] == [0, 1]
        assert tail.records_read == 2

    def test_incremental_polls_never_duplicate(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_days(path, 0, 2)
        tail = JournalTail(path)
        assert len(tail.poll()) == 2
        assert tail.poll() == []
        _emit_days(path, 2, 3)
        assert [r["day"] for r in tail.poll()] == [2, 3, 4]


class TestTailJournal:
    def test_non_follow_returns_current_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_days(path, 0, 3)
        assert len(list(tail_journal(path))) == 3

    def test_follow_stops_after_end_type(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(str(path))
        journal.emit("day", day=0, emitted=1)
        journal.emit("run_end", days=1, packets=1)
        journal.emit("cache_store", config_hash="ff", path="x")
        journal.close()
        types = [r["type"] for r in tail_journal(path, follow=True)]
        assert types == ["day", "run_end"]  # default end_types

    def test_follow_with_stop_drains_everything(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(str(path))
        journal.emit("day", day=0, emitted=1)
        journal.emit("run_end", days=1, packets=1)
        journal.emit("cache_store", config_hash="ff", path="x")
        journal.close()
        types = [r["type"] for r in tail_journal(
            path, follow=True, end_types=(), stop=lambda: True)]
        assert types == ["day", "run_end", "cache_store"]

    def test_follow_times_out(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_days(path, 0, 1)
        records = list(tail_journal(path, follow=True, timeout=0.2,
                                    poll_interval=0.01, end_types=()))
        assert len(records) == 1  # returned — did not hang forever


class TestCrashTolerance:
    """A killed checkpointed run, streamed while dead, resumed in place."""

    @pytest.fixture(scope="class")
    def baseline(self, tmp_path_factory):
        """Uninterrupted checkpointed run: the golden journal bytes."""
        root = tmp_path_factory.mktemp("tail-base")
        journal_path = root / "journal.jsonl"
        with use_journal(Journal(str(journal_path))) as journal:
            run_scenario(_config(), checkpoint_dir=root / "ckpt",
                         checkpoint_every=CADENCE)
            journal.close()
        return journal_path.read_bytes()

    def test_killed_run_streams_then_resumes_byte_compatibly(
            self, tmp_path, baseline):
        journal_path = tmp_path / "journal.jsonl"
        ckpt = tmp_path / "ckpt"

        # Phase 1: the run dies after day 5 (last checkpoint: day 4).
        with use_journal(Journal(str(journal_path))) as journal:
            with pytest.raises(SimulationAborted):
                run_scenario(_config(), checkpoint_dir=ckpt,
                             checkpoint_every=CADENCE,
                             abort_after_day=ABORT_AFTER)
            journal.close()
        # Simulate the realistic crash artifact: a torn final line.
        dead_bytes = journal_path.read_bytes()
        with open(journal_path, "ab") as stream:
            stream.write(b'{"v": 1, "type": "day", "day": 99, "emi')

        # A progress stream attached to the dead run delivers every
        # complete record — the torn line is never yielded.
        baseline_records = [json.loads(line)
                            for line in baseline.splitlines()]
        tail = JournalTail(journal_path)
        first = tail.poll()
        assert first == baseline_records[:len(first)]  # a strict prefix
        assert sum(r["type"] == "day" for r in first) == ABORT_AFTER + 1
        assert not any(r.get("day") == 99 for r in first)
        assert tail.poll() == []  # fully drained, torn line still held

        # Phase 2: resume into the *same* journal path.  The fresh journal
        # truncates and replays history, so the first `tail.offset` bytes
        # are rewritten byte-identically and the tail just continues.
        with use_journal(Journal(str(journal_path))) as journal:
            run_scenario(_config(), checkpoint_dir=ckpt,
                         checkpoint_every=CADENCE, resume=True)
            journal.close()
        rest = tail.poll()
        assert first + rest == baseline_records
        assert rest[-1]["type"] == "run_end"

        # The recovered journal is byte-identical to the uninterrupted
        # run's — and its head matches what the dead run had written.
        recovered = journal_path.read_bytes()
        assert recovered == baseline
        assert recovered.startswith(dead_bytes)
        # read_journal agrees end-to-end (full-file validation path).
        assert read_journal(journal_path) == baseline_records
