"""Tests for repro.obs.journal: round trips, schema versioning, crash
tolerance, the null journal."""

import json

import pytest

from repro.obs import (
    JOURNAL_SCHEMA_VERSION,
    Journal,
    JournalError,
    NULL_JOURNAL,
    RunManifest,
    config_hash,
    get_journal,
    load_manifest,
    read_journal,
    set_journal,
    use_journal,
)
from repro.sim import ScenarioConfig


def _write_run(path, config):
    journal = Journal(str(path))
    journal.emit("run_manifest",
                 **RunManifest.from_config(config).to_record_fields())
    journal.emit("day", day=0, emitted=123)
    journal.emit("session_start", agent=4, asn=64500, trigger="bgp",
                 at=86_400.0)
    journal.emit("deploy", name="H_TCP", prefix="2403:e800:8000::/48",
                 at=86_400.0)
    journal.emit("retract", name="H_TCP", prefix="2403:e800:8000::/48",
                 at=172_800.0)
    journal.emit("detection", source_length=64, min_targets=100,
                 timeout=3600.0, records_in=10, events_out=2)
    journal.emit("run_end", days=1, packets=123)
    journal.close()
    return journal


class TestRoundTrip:
    def test_write_read_manifest_equality(self, tmp_path):
        """write → read → RunManifest equality (the provenance contract)."""
        path = tmp_path / "journal.jsonl"
        config = ScenarioConfig(seed=42, duration_days=7)
        _write_run(path, config)
        records = read_journal(path)
        assert [r["type"] for r in records] == [
            "run_manifest", "day", "session_start", "deploy", "retract",
            "detection", "run_end",
        ]
        assert all(r["v"] == JOURNAL_SCHEMA_VERSION for r in records)
        assert load_manifest(path) == RunManifest.from_config(config)

    def test_config_hash_stable_and_sensitive(self):
        a = ScenarioConfig(seed=1)
        assert config_hash(a) == config_hash(ScenarioConfig(seed=1))
        assert config_hash(a) != config_hash(ScenarioConfig(seed=2))

    def test_records_written_counter(self, tmp_path):
        journal = _write_run(tmp_path / "j.jsonl", ScenarioConfig())
        assert journal.records_written == 7

    def test_lines_are_sorted_key_json(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(str(path))
        journal.emit("day", emitted=1, day=0)
        journal.close()
        line = path.read_text().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True)


class TestValidation:
    def test_unknown_record_type_rejected_on_write(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        with pytest.raises(JournalError, match="unknown journal record"):
            journal.emit("not_a_type", foo=1)
        journal.close()

    def test_missing_fields_rejected_on_write(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        with pytest.raises(JournalError, match="missing fields"):
            journal.emit("day", day=0)  # no 'emitted'
        journal.close()

    def test_unknown_record_type_rejected_on_read(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps(
            {"v": JOURNAL_SCHEMA_VERSION, "type": "mystery"}) + "\n")
        with pytest.raises(JournalError, match="unknown journal record"):
            read_journal(path)

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps(
            {"v": JOURNAL_SCHEMA_VERSION + 1, "type": "day",
             "day": 0, "emitted": 1}) + "\n")
        with pytest.raises(JournalError, match="schema version"):
            read_journal(path)


class TestCrashTolerance:
    def test_torn_final_line_tolerated(self, tmp_path):
        """A process dying mid-write tears at most the last record; the
        reader must keep everything before it."""
        path = tmp_path / "j.jsonl"
        _write_run(path, ScenarioConfig())
        with open(path, "a") as stream:
            stream.write('{"v": 1, "type": "day", "day": 1, "emi')
        records = read_journal(path)
        assert len(records) == 7
        assert records[-1]["type"] == "run_end"

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            '{"v": 1, "type": "day", "day": 0, "emitted": 1}',
            '{"v": 1, "type": "day", "day":',
            '{"v": 1, "type": "day", "day": 2, "emitted": 3}',
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            read_journal(path)

    def test_no_manifest_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"v": 1, "type": "day", "day": 0, "emitted": 1}\n')
        with pytest.raises(JournalError, match="no run_manifest"):
            load_manifest(path)


class TestActiveJournal:
    def test_default_is_null(self):
        assert get_journal() is NULL_JOURNAL

    def test_null_journal_emit_is_free(self):
        NULL_JOURNAL.emit("anything_at_all", totally="unchecked")
        assert NULL_JOURNAL.records_written == 0

    def test_set_and_restore(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        previous = set_journal(journal)
        try:
            assert get_journal() is journal
        finally:
            set_journal(previous)
            journal.close()
        assert get_journal() is NULL_JOURNAL

    def test_use_journal_scoped(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        with use_journal(journal) as active:
            assert active is journal
        assert get_journal() is NULL_JOURNAL
        journal.close()

    def test_instrumented_code_emits(self, tmp_path):
        """detect_scans writes a detection summary to the active journal."""
        from repro.analysis.records import PacketRecords
        from repro.analysis.scandetect import detect_scans

        path = tmp_path / "j.jsonl"
        journal = Journal(str(path))
        with use_journal(journal):
            detect_scans(PacketRecords.empty(), source_length=48)
        journal.close()
        (record,) = read_journal(path)
        assert record["type"] == "detection"
        assert record["source_length"] == 48
        assert record["records_in"] == 0

    def test_stream_journal(self):
        import io

        stream = io.StringIO()
        journal = Journal(stream)
        journal.emit("day", day=0, emitted=5)
        journal.close()
        assert json.loads(stream.getvalue())["day"] == 0
        assert not stream.closed  # caller owns the stream
