"""Tests for repro.obs.trace: spans, nesting, export, the null tracer."""

import json

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanLifecycle:
    def test_span_records_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work"):
            pass
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.duration == pytest.approx(1.0)

    def test_nesting_assigns_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Completion order: children close before parents.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_attrs_from_kwargs_and_set(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", size=3) as span:
            span.set(result=7)
        assert span.attrs == {"size": 3, "result": 7}

    def test_exception_marks_error_and_closes(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] == "RuntimeError"
        assert not tracer._stack

    def test_self_time_excludes_children(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.now += 10.0
        outer = tracer.spans[-1]
        inner = tracer.spans[0]
        assert outer.child_time == pytest.approx(inner.duration)
        assert outer.self_time == pytest.approx(
            outer.duration - inner.duration
        )

    def test_total_time_sums_roots_only(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("a.child"):
                pass
        with tracer.span("b"):
            pass
        roots = [s for s in tracer.spans if s.parent_id is None]
        assert tracer.total_time() == pytest.approx(
            sum(s.duration for s in roots)
        )


class TestAggregation:
    def test_by_name_counts(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("stage"):
                pass
        stats = tracer.by_name()["stage"]
        assert stats["count"] == 3
        assert stats["total"] == pytest.approx(3.0)

    def test_render_self_time_sorted(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("fast"):
            pass
        with tracer.span("slow"):
            clock.now += 50.0
        table = tracer.render_self_time()
        assert table.index("slow") < table.index("fast")

    def test_render_empty(self):
        assert "no spans" in Tracer().render_self_time()


class TestChromeExport:
    def test_chrome_trace_shape(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", day=1):
            with tracer.span("inner"):
                pass
        doc = tracer.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert event["ts"] >= 0
        assert events[0]["args"]["day"] == 1
        # parent linkage is exported for tooling.
        assert events[1]["args"]["parent_id"] == events[0]["args"]["span_id"]

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        assert json.loads(path.read_text())["traceEvents"]


class TestMisNesting:
    def test_out_of_order_exit_recovers(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Close outer first (a bug in instrumented code); the stack must
        # recover so the next root span has no bogus parent.
        outer.__exit__(None, None, None)
        with tracer.span("next") as nxt:
            pass
        assert nxt.parent_id is None


class TestActiveTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_null_span_is_shared_noop(self):
        span = NULL_TRACER.span("anything", x=1)
        assert span is NULL_SPAN
        with span as entered:
            assert entered is span
        assert span.set(y=2) is span
        assert NULL_TRACER.spans == []

    def test_set_and_restore(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_scoped(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_instrumented_code_picks_up_tracer(self):
        """detect_scans spans appear when a tracer is installed mid-run."""
        from repro.analysis.records import PacketRecords
        from repro.analysis.scandetect import detect_scans

        with use_tracer(Tracer()) as tracer:
            detect_scans(PacketRecords.empty())
        names = [s.name for s in tracer.spans]
        assert names == ["analysis.detect_scans"]
