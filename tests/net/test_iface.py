"""Tests for simulated interfaces and links."""

import pytest

from repro.net.addr import IPv6Prefix
from repro.net.iface import Interface, Link
from repro.net.packet import icmp_echo_request


@pytest.fixture
def prefix():
    return IPv6Prefix.parse("2001:db8:1::/48")


def test_claim_and_own(prefix):
    iface = Interface("eth0")
    iface.claim(prefix)
    assert iface.owns(prefix.network | 5)
    assert not iface.owns(0)


def test_claim_all_and_release(prefix):
    other = IPv6Prefix.parse("2001:db8:2::/48")
    iface = Interface("eth0")
    iface.claim_all([prefix, other])
    assert iface.owns(other.network | 1)
    iface.release(other)
    assert not iface.owns(other.network | 1)
    with pytest.raises(ValueError):
        iface.release(other)


def test_link_delivery_and_counters(prefix):
    received = []
    iface = Interface("pot0", handler=received.append)
    iface.claim(prefix)
    link = Link()
    link.attach(iface)
    pkt = icmp_echo_request(1.0, 99, prefix.network | 1)
    link.inject(pkt)
    assert received == [pkt]
    assert link.delivered == 1
    assert iface.rx_count == 1


def test_link_drops_unowned():
    link = Link()
    link.attach(Interface("pot0"))
    link.inject(icmp_echo_request(1.0, 99, 42))
    assert link.dropped == 1


def test_sender_does_not_receive_own_packet(prefix):
    received = []
    a = Interface("a", handler=received.append)
    a.claim(prefix)
    link = Link()
    link.attach(a)
    # a sends a packet to its own prefix: must not be self-delivered.
    a.transmit(icmp_echo_request(1.0, 99, prefix.network | 1))
    assert received == []
    assert link.dropped == 1
    assert a.tx_count == 1


def test_transmit_requires_attachment():
    iface = Interface("lonely")
    with pytest.raises(RuntimeError):
        iface.transmit(icmp_echo_request(1.0, 1, 2))


def test_response_flows_back():
    """An interface handler answering a ping reaches the scanner side."""
    pot_prefix = IPv6Prefix.parse("2001:db8:1::/48")
    scanner_prefix = IPv6Prefix.parse("2001:db8:f::/48")
    replies = []
    scanner = Interface("scanner", handler=replies.append)
    scanner.claim(scanner_prefix)

    pot = Interface("pot")
    pot.claim(pot_prefix)

    def answer(pkt):
        from repro.net.packet import icmp_echo_reply

        pot.transmit(icmp_echo_reply(pkt))

    pot.set_handler(answer)
    link = Link()
    link.attach(scanner)
    link.attach(pot)
    scanner.transmit(
        icmp_echo_request(1.0, scanner_prefix.network | 1,
                          pot_prefix.network | 1)
    )
    assert len(replies) == 1
    assert replies[0].src == pot_prefix.network | 1
