"""Tests for repro.net.addr."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.net.addr import (
    MAX_ADDRESS,
    IPv6Address,
    IPv6Prefix,
    aggregate,
    aggregate_sources,
    format_address,
    join_u64,
    mask_u64,
    group_ids_u64,
    member_mask_u64,
    pack_key_u64,
    parse_address,
    parse_prefix,
    split_u64,
    unique_pairs_u64,
)

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)
prefix_lengths = st.integers(min_value=0, max_value=128)


class TestParseFormat:
    def test_parse_full_form(self):
        assert parse_address("0:0:0:0:0:0:0:1") == 1

    def test_parse_compressed(self):
        assert parse_address("::1") == 1
        assert parse_address("::") == 0
        assert parse_address("2001:db8::") == 0x20010DB8 << 96

    def test_parse_leading_compress(self):
        assert parse_address("::ffff:1") == (0xFFFF << 16) | 1

    def test_parse_trailing_compress(self):
        assert parse_address("fe80::") == 0xFE80 << 112

    def test_parse_rejects_double_compress(self):
        with pytest.raises(ValueError):
            parse_address("1::2::3")

    def test_parse_rejects_too_many_groups(self):
        with pytest.raises(ValueError):
            parse_address("1:2:3:4:5:6:7:8:9")

    def test_parse_rejects_bad_group(self):
        with pytest.raises(ValueError):
            parse_address("2001:xyz::1")

    def test_parse_rejects_oversize_group(self):
        with pytest.raises(ValueError):
            parse_address("12345::")

    def test_format_zero_compression(self):
        assert format_address(1) == "::1"
        assert format_address(0) == "::"

    def test_format_picks_longest_zero_run(self):
        value = parse_address("2001:0:0:1:0:0:0:1")
        assert format_address(value) == "2001:0:0:1::1"

    def test_format_no_compression_single_zero(self):
        value = parse_address("1:0:2:3:4:5:6:7")
        assert format_address(value) == "1:0:2:3:4:5:6:7"

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_address(-1)
        with pytest.raises(ValueError):
            format_address(MAX_ADDRESS + 1)

    @given(addresses)
    def test_roundtrip(self, value):
        assert parse_address(format_address(value)) == value


class TestIPv6Address:
    def test_truncate(self):
        addr = IPv6Address.parse("2001:db8:1:2:3:4:5:6")
        assert addr.truncate(32) == parse_address("2001:db8::")

    def test_prefix(self):
        addr = IPv6Address.parse("2001:db8:1::9")
        assert addr.prefix(48) == IPv6Prefix.parse("2001:db8:1::/48")

    def test_ordering(self):
        assert IPv6Address(1) < IPv6Address(2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            IPv6Address(-1)

    def test_str(self):
        assert str(IPv6Address(1)) == "::1"


class TestIPv6Prefix:
    def test_parse_and_str(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        assert str(prefix) == "2001:db8::/32"
        assert prefix.length == 32

    def test_parse_requires_slash(self):
        with pytest.raises(ValueError):
            IPv6Prefix.parse("2001:db8::")

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            IPv6Prefix(1, 32)

    def test_contains_address(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        assert IPv6Address.parse("2001:db8:ffff::1") in prefix
        assert IPv6Address.parse("2001:db9::1") not in prefix

    def test_contains_int(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        assert parse_address("2001:db8::42") in prefix

    def test_contains_prefix(self):
        outer = IPv6Prefix.parse("2001:db8::/32")
        inner = IPv6Prefix.parse("2001:db8:5::/48")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_first_last(self):
        prefix = IPv6Prefix.parse("2001:db8::/126")
        assert prefix.first.value == prefix.network
        assert prefix.last.value == prefix.network + 3

    def test_num_addresses(self):
        assert IPv6Prefix.parse("::/128").num_addresses == 1
        assert IPv6Prefix.parse("2001:db8::/64").num_addresses == 1 << 64

    def test_address_at(self):
        prefix = IPv6Prefix.parse("2001:db8::/64")
        assert prefix.address_at(5).value == prefix.network + 5
        with pytest.raises(ValueError):
            prefix.address_at(1 << 64)

    def test_random_address_inside(self, rng):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        for _ in range(50):
            assert prefix.random_address(rng) in prefix

    def test_random_address_128(self, rng):
        prefix = IPv6Prefix.parse("2001:db8::1/128")
        assert prefix.random_address(rng).value == prefix.network

    def test_subnets(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        subs = list(prefix.subnets(34))
        assert len(subs) == 4
        assert subs[0].network == prefix.network
        assert all(prefix.contains_prefix(s) for s in subs)

    def test_subnets_refuses_explosion(self):
        with pytest.raises(ValueError):
            list(IPv6Prefix.parse("2001:db8::/32").subnets(64))

    def test_subnet_at(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        sub = prefix.subnet_at(3, 48)
        assert sub == IPv6Prefix.parse("2001:db8:3::/48")
        with pytest.raises(ValueError):
            prefix.subnet_at(1 << 16, 48)

    def test_supernet(self):
        sub = IPv6Prefix.parse("2001:db8:3::/48")
        assert sub.supernet(32) == IPv6Prefix.parse("2001:db8::/32")
        with pytest.raises(ValueError):
            sub.supernet(64)

    @given(addresses, prefix_lengths)
    def test_address_always_in_own_prefix(self, value, length):
        addr = IPv6Address(value)
        assert addr in addr.prefix(length)

    @given(addresses, st.integers(min_value=1, max_value=127))
    def test_subnet_at_roundtrip(self, value, length):
        prefix = IPv6Address(value).prefix(length)
        assert prefix.subnet_at(0, length) == prefix


class TestAggregation:
    def test_aggregate_scalar(self):
        value = parse_address("2001:db8:1:2::9")
        assert aggregate(value, 48) == parse_address("2001:db8:1::")

    def test_aggregate_sources(self):
        values = [parse_address("2001:db8::1"), parse_address("2001:db8::2"),
                  parse_address("2001:db9::1")]
        assert len(aggregate_sources(values, 32)) == 2
        assert len(aggregate_sources(values, 128)) == 3

    @given(st.lists(addresses, max_size=20), prefix_lengths)
    def test_split_mask_join_matches_scalar(self, values, length):
        hi, lo = split_u64(values)
        mhi, mlo = mask_u64(hi, lo, length)
        assert join_u64(mhi, mlo) == [aggregate(v, length) for v in values]

    def test_mask_u64_rejects_bad_length(self):
        hi, lo = split_u64([1])
        with pytest.raises(ValueError):
            mask_u64(hi, lo, 129)


class TestPackedKeys:
    """The packed-key / lexsort helpers backing the columnar hot paths."""

    @given(st.lists(addresses, max_size=20),
           st.integers(min_value=0, max_value=64))
    def test_pack_key_matches_scalar_truncation(self, values, length):
        hi, lo = split_u64(values)
        key = pack_key_u64(hi, lo, length)
        assert key is not None
        assert [int(k) << 64 for k in key] == \
            [aggregate(v, length) for v in values]

    @given(st.lists(addresses, max_size=20),
           st.integers(min_value=65, max_value=128))
    def test_pack_key_refuses_long_lengths(self, values, length):
        hi, lo = split_u64(values)
        assert pack_key_u64(hi, lo, length) is None

    def test_pack_key_rejects_bad_length(self):
        hi, lo = split_u64([1])
        with pytest.raises(ValueError):
            pack_key_u64(hi, lo, 129)

    @given(st.lists(addresses, max_size=30))
    def test_unique_pairs_matches_set(self, values):
        hi, lo = split_u64(values)
        uhi, ulo = unique_pairs_u64(hi, lo)
        assert join_u64(uhi, ulo) == sorted(set(values))

    @given(st.lists(addresses, max_size=30))
    def test_group_ids_match_np_unique(self, values):
        hi, lo = split_u64(values)
        ids, n_groups = group_ids_u64(hi, lo)
        assert n_groups == len(set(values))
        if values:
            pairs = np.stack([hi, lo], axis=1)
            _, inverse = np.unique(pairs, axis=0, return_inverse=True)
            assert ids.tolist() == inverse.tolist()

    @given(st.lists(addresses, max_size=30), st.lists(addresses, max_size=10))
    def test_member_mask_matches_python_in(self, values, members):
        hi, lo = split_u64(values)
        set_hi, set_lo = split_u64(set(members))
        mask = member_mask_u64(hi, lo, set_hi, set_lo)
        expected = [v in set(members) for v in values]
        assert mask.tolist() == expected
