"""Tests for the struct-of-arrays PacketBatch emission format."""

import numpy as np
import pytest

from repro.net.addr import IPv6Prefix
from repro.net.batch import PROBE_UDP_PAYLOAD, PacketBatch, probe_batch
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)

PREFIX = IPv6Prefix.parse("2001:db8:40::/48")


def _sample_packets():
    src = 0x2620_0000 << 96 | 0xABCD
    return [
        icmp_echo_request(1.0, src, PREFIX.network | 1),
        tcp_segment(2.0, src, PREFIX.network | 2, 40_000, 443, TcpFlags.SYN),
        udp_datagram(3.0, src, PREFIX.network | 3, 40_001, 53,
                     payload=PROBE_UDP_PAYLOAD),
    ]


class TestConstruction:
    def test_from_packets_roundtrip(self):
        packets = _sample_packets()
        batch = PacketBatch.from_packets(packets)
        assert len(batch) == 3
        for original, materialized in zip(packets, batch.iter_packets()):
            assert materialized == original

    def test_from_columns_coerces_dtypes(self):
        batch = PacketBatch.from_columns(
            [1.0], [2], [3], [4], [5], [ICMPV6], [128], [0]
        )
        assert batch.ts.dtype == np.float64
        assert batch.src_hi.dtype == np.uint64
        assert batch.dst_lo.dtype == np.uint64
        assert batch.proto.dtype == np.uint8
        assert batch.sport.dtype == np.uint16
        assert batch.dport.dtype == np.uint16

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PacketBatch.from_columns(
                [1.0, 2.0], [0], [0], [0], [0], [6], [1], [2]
            )

    def test_empty(self):
        batch = PacketBatch.empty()
        assert len(batch) == 0
        assert list(batch.iter_packets()) == []


class TestConcatSelect:
    def test_concat_preserves_order(self):
        packets = _sample_packets()
        a = PacketBatch.from_packets(packets[:2])
        b = PacketBatch.from_packets(packets[2:])
        merged = PacketBatch.concat([a, b])
        assert [p.timestamp for p in merged.iter_packets()] == [1.0, 2.0, 3.0]

    def test_concat_single_part_is_identity(self):
        a = PacketBatch.from_packets(_sample_packets())
        assert PacketBatch.concat([a]) is a

    def test_concat_empty_list(self):
        assert len(PacketBatch.concat([])) == 0

    def test_select_mask(self):
        batch = PacketBatch.from_packets(_sample_packets())
        tcp_only = batch.select(batch.proto == np.uint8(TCP))
        assert len(tcp_only) == 1
        assert tcp_only.packet_at(0).dport == 443

    def test_mask_dst_in(self):
        packets = _sample_packets() + [
            icmp_echo_request(4.0, 1, IPv6Prefix.parse("2001:db8:41::/48")
                              .network | 9),
        ]
        batch = PacketBatch.from_packets(packets)
        mask = batch.mask_dst_in(PREFIX)
        assert mask.tolist() == [True, True, True, False]


class TestProbeSemantics:
    def test_packet_at_tcp_is_bare_syn(self):
        batch = PacketBatch.from_columns(
            [1.0], [0], [1], [0], [2], [TCP], [40_000], [443]
        )
        pkt = batch.packet_at(0)
        assert pkt.flags == TcpFlags.SYN
        assert pkt.payload == b""

    def test_packet_at_udp_carries_probe_payload(self):
        batch = PacketBatch.from_columns(
            [1.0], [0], [1], [0], [2], [UDP], [40_000], [53]
        )
        assert batch.packet_at(0).payload == PROBE_UDP_PAYLOAD

    def test_packet_at_icmp_is_echo_request(self):
        batch = PacketBatch.from_columns(
            [1.0], [0], [1], [0], [2], [ICMPV6],
            [int(IcmpType.ECHO_REQUEST)], [0]
        )
        assert batch.packet_at(0).is_icmp_echo_request

    def test_probe_batch_normalizes_icmp_ports(self):
        batch = probe_batch(
            ts=[1.0, 2.0], src_hi=[0, 0], src_lo=[1, 1],
            dst_hi=[0, 0], dst_lo=[2, 3],
            proto=[ICMPV6, TCP], sport=[55_555, 40_000], dport=[99, 443],
        )
        # The ICMP row gets the Echo Request type regardless of the draw.
        assert batch.sport[0] == int(IcmpType.ECHO_REQUEST)
        assert batch.dport[0] == 0
        # Non-ICMP rows keep their drawn ports.
        assert batch.sport[1] == 40_000
        assert batch.dport[1] == 443

    def test_probe_batch_does_not_mutate_inputs(self):
        sport = np.array([55_555], dtype=np.uint16)
        dport = np.array([99], dtype=np.uint16)
        probe_batch([1.0], [0], [1], [0], [2], [ICMPV6], sport, dport)
        assert sport[0] == 55_555
        assert dport[0] == 99
