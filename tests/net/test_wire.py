"""Tests for the capture wire format."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.net import wire
from repro.net.addr import MAX_ADDRESS
from repro.net.packet import ICMPV6, TCP, UDP, Packet

packets = st.builds(
    Packet,
    timestamp=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    src=st.integers(min_value=0, max_value=MAX_ADDRESS),
    dst=st.integers(min_value=0, max_value=MAX_ADDRESS),
    proto=st.sampled_from([ICMPV6, TCP, UDP]),
    sport=st.integers(min_value=0, max_value=0xFFFF),
    dport=st.integers(min_value=0, max_value=0xFFFF),
    flags=st.integers(min_value=0, max_value=0xFF),
    hop_limit=st.integers(min_value=0, max_value=255),
    payload=st.binary(max_size=64),
    seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ack=st.integers(min_value=0, max_value=0xFFFFFFFF),
)


@given(packets)
def test_encode_decode_roundtrip(pkt):
    assert wire.decode_packet(wire.encode_packet(pkt)) == pkt


def test_header_roundtrip():
    buf = io.BytesIO()
    wire.write_header(buf)
    buf.seek(0)
    wire.read_header(buf)  # must not raise


def test_bad_magic_rejected():
    buf = io.BytesIO(b"XXXX\x01\x00\x00\x00")
    with pytest.raises(ValueError, match="magic"):
        wire.read_header(buf)


def test_bad_version_rejected():
    buf = io.BytesIO(b"RPV6\x02\x00\x00\x00")
    with pytest.raises(ValueError, match="version"):
        wire.read_header(buf)


def test_truncated_record_rejected():
    pkt = Packet(timestamp=1.0, src=1, dst=2, proto=TCP, payload=b"abcd")
    encoded = wire.encode_packet(pkt)
    with pytest.raises(ValueError):
        wire.decode_packet(encoded[:10])
    with pytest.raises(ValueError):
        wire.decode_packet(encoded[:-2])


def test_stream_packets_multiple():
    pkts = [Packet(timestamp=float(i), src=i, dst=i + 1, proto=UDP,
                   payload=bytes([i]))
            for i in range(5)]
    buf = io.BytesIO()
    for pkt in pkts:
        buf.write(wire.encode_packet(pkt))
    buf.seek(0)
    assert list(wire.stream_packets(buf)) == pkts


def test_stream_detects_truncation():
    pkt = Packet(timestamp=1.0, src=1, dst=2, proto=TCP, payload=b"abcd")
    data = wire.encode_packet(pkt)
    buf = io.BytesIO(data[:-1])
    with pytest.raises(ValueError):
        list(wire.stream_packets(buf))


def test_oversize_payload_rejected():
    pkt = Packet(timestamp=1.0, src=1, dst=2, proto=TCP,
                 payload=b"x" * 70_000)
    with pytest.raises(ValueError):
        wire.encode_packet(pkt)
