"""Tests for standard-pcap interop (real frames, real checksums)."""

import io
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addr import MAX_ADDRESS
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    Packet,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)
from repro.net.realpcap import (
    ETHERTYPE_IPV6,
    parse_frame,
    read_pcap,
    serialize_frame,
    verify_checksums,
    write_pcap,
)

SRC = 0x20010DB8_0000_0000_0000_0000_0000_0001
DST = 0x20010DB8_0001_0000_0000_0000_0000_0099


@pytest.fixture
def sample_packets():
    return [
        icmp_echo_request(1.5, SRC, DST, ident=7, payload=b"ping"),
        tcp_segment(2.25, SRC, DST, 4000, 443, TcpFlags.SYN, seq=123),
        udp_datagram(3.75, SRC, DST, 5000, 53, payload=b"\x12\x34q"),
    ]


class TestFrames:
    def test_frame_layout(self, sample_packets):
        frame = serialize_frame(sample_packets[0])
        assert struct.unpack_from("!H", frame, 12)[0] == ETHERTYPE_IPV6
        version = frame[14] >> 4
        assert version == 6
        assert frame[14 + 6] == ICMPV6  # next header
        assert frame[14 + 8:14 + 24] == SRC.to_bytes(16, "big")
        assert frame[14 + 24:14 + 40] == DST.to_bytes(16, "big")

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_checksums_valid(self, sample_packets, index):
        assert verify_checksums(serialize_frame(sample_packets[index]))

    def test_corrupted_checksum_detected(self, sample_packets):
        frame = bytearray(serialize_frame(sample_packets[1]))
        frame[-1] ^= 0xFF  # flip payload bits -> checksum mismatch
        assert not verify_checksums(bytes(frame))

    def test_parse_roundtrip_core_fields(self, sample_packets):
        for pkt in sample_packets:
            parsed = parse_frame(serialize_frame(pkt), pkt.timestamp)
            assert parsed is not None
            assert (parsed.src, parsed.dst) == (pkt.src, pkt.dst)
            assert parsed.proto == pkt.proto
            assert parsed.payload == pkt.payload
            if pkt.proto != ICMPV6:
                assert (parsed.sport, parsed.dport) == (pkt.sport, pkt.dport)

    def test_non_ipv6_frame_ignored(self):
        frame = b"\x00" * 12 + struct.pack("!H", 0x0800) + b"\x00" * 60
        assert parse_frame(frame, 0.0) is None


class TestFileRoundtrip:
    def test_write_read(self, tmp_path, sample_packets):
        path = tmp_path / "capture.pcap"
        assert write_pcap(path, sample_packets) == 3
        parsed = list(read_pcap(path))
        assert len(parsed) == 3
        for original, got in zip(sample_packets, parsed):
            assert got.timestamp == pytest.approx(original.timestamp,
                                                  abs=1e-5)
            assert got.src == original.src
            assert got.payload == original.payload

    def test_stream_io(self, sample_packets):
        buffer = io.BytesIO()
        write_pcap(buffer, sample_packets)
        buffer.seek(0)
        assert len(list(read_pcap(buffer))) == 3

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            list(read_pcap(io.BytesIO(b"\x00" * 24)))

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            list(read_pcap(io.BytesIO(b"\x00" * 4)))

    def test_global_header_is_standard(self, tmp_path, sample_packets):
        path = tmp_path / "capture.pcap"
        write_pcap(path, sample_packets)
        header = path.read_bytes()[:24]
        magic, major, minor = struct.unpack_from("<IHH", header)
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)


packets_strategy = st.builds(
    Packet,
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    src=st.integers(min_value=0, max_value=MAX_ADDRESS),
    dst=st.integers(min_value=0, max_value=MAX_ADDRESS),
    proto=st.sampled_from([ICMPV6, TCP, UDP]),
    sport=st.integers(min_value=0, max_value=255),
    dport=st.integers(min_value=0, max_value=0xFFFF),
    flags=st.integers(min_value=0, max_value=0x3F),
    hop_limit=st.integers(min_value=0, max_value=255),
    payload=st.binary(max_size=32),
    seq=st.integers(min_value=0, max_value=0xFFFF),
    ack=st.integers(min_value=0, max_value=0xFFFFFFFF),
)


@given(packets_strategy)
@settings(max_examples=100, deadline=None)
def test_every_serialized_frame_has_valid_checksum(pkt):
    assert verify_checksums(serialize_frame(pkt))


@given(packets_strategy)
@settings(max_examples=100, deadline=None)
def test_parse_preserves_addresses_and_payload(pkt):
    parsed = parse_frame(serialize_frame(pkt), pkt.timestamp)
    assert parsed is not None
    assert (parsed.src, parsed.dst, parsed.proto) == (
        pkt.src, pkt.dst, pkt.proto
    )
    assert parsed.payload == pkt.payload
