"""Tests for capture files and BPF-lite filters."""

import pytest

from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6, TCP, icmp_echo_request, tcp_segment, TcpFlags
from repro.net.pcapstore import PacketFilter, PacketReader, PacketWriter, read_packets


@pytest.fixture
def sample_packets():
    prefix = IPv6Prefix.parse("2001:db8:1::/48")
    return [
        icmp_echo_request(1.0, 100, prefix.network | 1),
        tcp_segment(2.0, 200, prefix.network | 2, 4000, 80, TcpFlags.SYN),
        icmp_echo_request(10.0, 100, 999),
    ]


def test_write_then_read(tmp_path, sample_packets):
    path = tmp_path / "cap.rpv6"
    with PacketWriter(path) as writer:
        assert writer.write_all(sample_packets) == 3
        assert writer.count == 3
    assert read_packets(path) == sample_packets


def test_reader_with_filter(tmp_path, sample_packets):
    path = tmp_path / "cap.rpv6"
    with PacketWriter(path) as writer:
        writer.write_all(sample_packets)
    got = read_packets(path, PacketFilter.proto(TCP))
    assert [p.proto for p in got] == [TCP]


def test_reader_rejects_garbage(tmp_path):
    path = tmp_path / "bad.bin"
    path.write_bytes(b"not a capture")
    with pytest.raises(ValueError):
        PacketReader(path)


class TestPacketFilter:
    def test_proto(self, sample_packets):
        f = PacketFilter.proto(ICMPV6)
        assert [f(p) for p in sample_packets] == [True, False, True]

    def test_dport(self, sample_packets):
        assert PacketFilter.dport(80)(sample_packets[1])

    def test_dst_in(self, sample_packets):
        f = PacketFilter.dst_in(IPv6Prefix.parse("2001:db8:1::/48"))
        assert [f(p) for p in sample_packets] == [True, True, False]

    def test_src_in(self, sample_packets):
        f = PacketFilter.src_in(IPv6Prefix.parse("::/120"))
        assert all(f(p) for p in sample_packets)

    def test_between(self, sample_packets):
        f = PacketFilter.between(0.5, 5.0)
        assert [f(p) for p in sample_packets] == [True, True, False]

    def test_between_rejects_empty_window(self):
        with pytest.raises(ValueError):
            PacketFilter.between(5.0, 1.0)

    def test_and_or_not(self, sample_packets):
        icmp = PacketFilter.proto(ICMPV6)
        early = PacketFilter.between(0.0, 5.0)
        assert (icmp & early)(sample_packets[0])
        assert not (icmp & early)(sample_packets[2])
        assert (icmp | early)(sample_packets[1])
        assert (~icmp)(sample_packets[1])

    def test_everything(self, sample_packets):
        assert all(PacketFilter.everything()(p) for p in sample_packets)
