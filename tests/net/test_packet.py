"""Tests for repro.net.packet."""

import pytest

from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    Packet,
    TcpFlags,
    icmp_echo_reply,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)


class TestPacketValidation:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            Packet(timestamp=0.0, src=1, dst=2, proto=99)

    def test_rejects_bad_ports(self):
        with pytest.raises(ValueError):
            Packet(timestamp=0.0, src=1, dst=2, proto=TCP, sport=70000)

    def test_rejects_bad_hop_limit(self):
        with pytest.raises(ValueError):
            Packet(timestamp=0.0, src=1, dst=2, proto=TCP, hop_limit=300)

    def test_proto_name(self):
        assert Packet(timestamp=0, src=1, dst=2, proto=ICMPV6).proto_name == "icmpv6"
        assert Packet(timestamp=0, src=1, dst=2, proto=TCP).proto_name == "tcp"
        assert Packet(timestamp=0, src=1, dst=2, proto=UDP).proto_name == "udp"


class TestIcmp:
    def test_echo_request_fields(self):
        pkt = icmp_echo_request(3.0, 10, 20, ident=7)
        assert pkt.is_icmp_echo_request
        assert pkt.sport == int(IcmpType.ECHO_REQUEST)
        assert pkt.dport == 7

    def test_echo_reply_swaps_addresses(self):
        request = icmp_echo_request(3.0, 10, 20, payload=b"ping")
        reply = icmp_echo_reply(request)
        assert reply.src == 20 and reply.dst == 10
        assert reply.sport == int(IcmpType.ECHO_REPLY)
        assert reply.payload == b"ping"

    def test_echo_reply_timestamp_override(self):
        request = icmp_echo_request(3.0, 10, 20)
        assert icmp_echo_reply(request, timestamp=9.0).timestamp == 9.0

    def test_echo_reply_rejects_non_request(self):
        pkt = udp_datagram(0.0, 1, 2, 3, 4)
        with pytest.raises(ValueError):
            icmp_echo_reply(pkt)

    def test_echo_reply_is_not_a_request(self):
        request = icmp_echo_request(3.0, 10, 20)
        assert not icmp_echo_reply(request).is_icmp_echo_request


class TestTcp:
    def test_syn_detection(self):
        syn = tcp_segment(0.0, 1, 2, 1000, 80, TcpFlags.SYN)
        assert syn.is_tcp_syn

    def test_synack_is_not_syn(self):
        synack = tcp_segment(0.0, 1, 2, 80, 1000,
                             TcpFlags.SYN | TcpFlags.ACK)
        assert not synack.is_tcp_syn

    def test_seq_ack_carried(self):
        pkt = tcp_segment(0.0, 1, 2, 1, 2, TcpFlags.ACK, seq=5, ack=9)
        assert pkt.seq == 5 and pkt.ack == 9


class TestReplyTemplate:
    def test_swaps_everything(self):
        pkt = udp_datagram(1.0, 10, 20, 1111, 53, b"q")
        reply = pkt.reply_template()
        assert (reply.src, reply.dst) == (20, 10)
        assert (reply.sport, reply.dport) == (53, 1111)
        assert reply.payload == b""
