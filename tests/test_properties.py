"""Cross-module property-based tests (hypothesis).

These pin down conservation laws and safety invariants that unit tests
cannot sweep: flow/scan accounting, honeypot response discipline, and
sampler containment, under arbitrary generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.flows import aggregate_flows
from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import detect_scans
from repro.core.honeyprefix import (
    HoneyprefixConfig,
    IcmpMode,
    deploy_addresses,
)
from repro.core.twinklenet import Twinklenet, TwinklenetConfig
from repro.net.addr import MAX_ADDRESS, IPv6Prefix
from repro.net.packet import ICMPV6, TCP, UDP, Packet
from repro.scanners.strategies import ProtocolProfile, prefix_sampler

PREFIX = IPv6Prefix.parse("2001:db8:42::/48")

packet_strategy = st.builds(
    Packet,
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    src=st.integers(min_value=0, max_value=MAX_ADDRESS),
    dst=st.one_of(
        st.integers(min_value=0, max_value=MAX_ADDRESS),
        # Bias half the destinations into the honeyprefix.
        st.integers(min_value=0, max_value=(1 << 80) - 1).map(
            lambda off: PREFIX.network | off
        ),
    ),
    proto=st.sampled_from([ICMPV6, TCP, UDP]),
    sport=st.integers(min_value=0, max_value=0xFFFF),
    dport=st.integers(min_value=0, max_value=0xFFFF),
    flags=st.integers(min_value=0, max_value=0x3F),
    payload=st.binary(max_size=16),
)


class TestFlowConservation:
    @given(st.lists(packet_strategy, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_flow_packets_sum_to_record_count(self, packets):
        records = PacketRecords.from_packets(packets)
        flows = aggregate_flows(records)
        assert sum(f.packets for f in flows) == len(records)

    @given(st.lists(packet_strategy, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_flow_times_bound_records(self, packets):
        records = PacketRecords.from_packets(packets)
        for flow in aggregate_flows(records):
            assert flow.first_seen <= flow.last_seen


class TestScanDetectionInvariants:
    @given(st.lists(packet_strategy, max_size=80),
           st.sampled_from([48, 64, 128]),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_event_accounting(self, packets, length, min_targets):
        records = PacketRecords.from_packets(packets)
        events = detect_scans(records, source_length=length,
                              min_targets=min_targets)
        assert sum(e.packets for e in events) <= len(records)
        for event in events:
            assert event.unique_targets >= min_targets
            assert event.packets >= event.unique_targets
            assert event.start <= event.end
            # Source is a valid /length truncation.
            shift = 128 - length
            if shift:
                assert event.source & ((1 << shift) - 1) == 0


class TestTwinklenetSafety:
    @given(st.lists(packet_strategy, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_never_raises_and_responds_only_when_responsive(self, packets):
        config = HoneyprefixConfig(
            name="prop", icmp_mode=IcmpMode.ADDRESSES,
            tcp_services=(("web", (80,)),), udp_ports=(53,),
        )
        hp = deploy_addresses(config, PREFIX, rng=0)
        responses = []
        pot = Twinklenet(TwinklenetConfig([hp]),
                         transmit=responses.append)
        for pkt in packets:
            pot.handle(pkt)
        probed = {p.dst for p in packets}
        for response in responses:
            # Every response originates from a probed, responsive address.
            assert response.src in probed
            assert response.src in hp.responsive

    @given(st.lists(packet_strategy, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_aliased_prefix_answers_only_icmp(self, packets):
        config = HoneyprefixConfig(name="alias", aliased=True,
                                   icmp_mode=IcmpMode.FULL)
        hp = deploy_addresses(config, PREFIX, rng=0)
        responses = []
        pot = Twinklenet(TwinklenetConfig([hp]),
                         transmit=responses.append)
        for pkt in packets:
            pot.handle(pkt)
        assert all(r.proto == ICMPV6 for r in responses)


class TestSamplerContainment:
    @given(st.integers(min_value=0, max_value=2**32),
           st.floats(min_value=0, max_value=1))
    @settings(max_examples=30, deadline=None)
    def test_prefix_sampler_stays_inside(self, seed, low_weight):
        rng = np.random.default_rng(seed)
        profile = ProtocolProfile(icmp_weight=0.5, tcp_weight=0.3,
                                  udp_weight=0.2)
        sampler = prefix_sampler(PREFIX, profile, low_weight=low_weight)
        for target in sampler(rng, 50):
            assert target.address in PREFIX
            assert target.proto in (ICMPV6, TCP, UDP)


class TestDeployDeterminism:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_addresses(self, seed):
        config = HoneyprefixConfig(
            name="det", icmp_mode=IcmpMode.ADDRESSES,
            tcp_services=(("web", (80,)),),
        )
        a = deploy_addresses(config, PREFIX, rng=seed)
        b = deploy_addresses(config, PREFIX, rng=seed)
        assert a.responsive == b.responsive

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_responsive_addresses_inside_prefix(self, seed):
        config = HoneyprefixConfig(
            name="det", icmp_mode=IcmpMode.ADDRESSES,
            tcp_services=(("web", (80, 443)),), udp_ports=(53, 123),
        )
        hp = deploy_addresses(config, PREFIX, rng=seed)
        assert all(addr in PREFIX for addr in hp.responsive)
