"""Tests for certificates, CT logs, the CA, and the ACME DNS-01 flow."""

import pytest

from repro._util import DAY, WEEK
from repro.dns.registry import Registrar, TldRegistry
from repro.dns.resolver import Resolver
from repro.tlsca.acme import AcmeClient, ChallengeFailed
from repro.tlsca.ca import (
    CertificateAuthority,
    RateLimitExceeded,
    registered_domain,
)
from repro.tlsca.cert import Certificate
from repro.tlsca.ctlog import CtLog


@pytest.fixture
def env():
    registrar = Registrar()
    registrar.add_tld(TldRegistry("com"))
    registrar.register_domain("honey.com", at=0.0)
    resolver = Resolver([registrar])
    log = CtLog()
    ca = CertificateAuthority(ct_logs=[log], weekly_limit=3)
    client = AcmeClient(ca, registrar, resolver)
    return registrar, resolver, log, ca, client


class TestCertificate:
    def test_validity_window(self):
        cert = Certificate(1, ("a.com",), "ca", 100.0, 200.0)
        assert cert.valid_at(150.0)
        assert not cert.valid_at(200.0)
        assert not cert.valid_at(50.0)

    def test_covers(self):
        cert = Certificate(1, ("a.com", "www.a.com"), "ca", 0.0, 1.0)
        assert cert.covers("WWW.A.COM")
        assert not cert.covers("mail.a.com")

    def test_rejects_empty_names(self):
        with pytest.raises(ValueError):
            Certificate(1, (), "ca", 0.0, 1.0)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            Certificate(1, ("a.com",), "ca", 10.0, 10.0)


class TestCtLog:
    def test_entries_visible_after_merge_delay(self):
        log = CtLog(merge_delay=5.0)
        cert = Certificate(1, ("a.com",), "ca", 100.0, 200.0)
        log.submit(cert, at=100.0)
        assert log.entries_between(0.0, 104.0) == []
        assert len(log.entries_between(0.0, 106.0)) == 1

    def test_names_between_dedups(self):
        log = CtLog()
        log.submit(Certificate(1, ("a.com",), "ca", 100.0, 200.0), at=100.0)
        log.submit(Certificate(2, ("a.com", "b.com"), "ca", 150.0, 250.0),
                   at=150.0)
        names = log.names_between(0.0, 1e6)
        assert set(names) == {"a.com", "b.com"}
        assert names["a.com"] == 101.0  # earliest appearance

    def test_rejects_out_of_order_submission(self):
        log = CtLog()
        log.submit(Certificate(1, ("a.com",), "ca", 100.0, 200.0), at=100.0)
        with pytest.raises(ValueError):
            log.submit(Certificate(2, ("b.com",), "ca", 50.0, 150.0), at=50.0)

    def test_len(self):
        log = CtLog()
        assert len(log) == 0
        log.submit(Certificate(1, ("a.com",), "ca", 0.0, 1.0), at=0.0)
        assert len(log) == 1


class TestCa:
    def test_registered_domain(self):
        assert registered_domain("www.mail.a.com") == "a.com"
        with pytest.raises(ValueError):
            registered_domain("com")

    def test_issue_logs_to_ct(self, env):
        _, _, log, ca, _ = env
        ca.issue(["honey.com"], at=100.0)
        assert len(log) == 1

    def test_rate_limit_per_domain_per_week(self, env):
        *_, ca, _ = env
        for i in range(3):
            ca.issue([f"s{i}.honey.com"], at=100.0 + i)
        with pytest.raises(RateLimitExceeded):
            ca.issue(["s3.honey.com"], at=200.0)

    def test_rate_limit_window_slides(self, env):
        *_, ca, _ = env
        for i in range(3):
            ca.issue([f"s{i}.honey.com"], at=100.0 + i)
        # A week later the window has slid.
        ca.issue(["s3.honey.com"], at=100.0 + WEEK + 10)

    def test_rate_limit_is_per_domain(self, env):
        registrar, *_ = env
        ca = CertificateAuthority(weekly_limit=1)
        ca.issue(["a.honey.com"], at=0.0)
        ca.issue(["b.other.com"], at=0.0)  # different domain: fine

    def test_mixed_domains_rejected(self, env):
        *_, ca, _ = env
        with pytest.raises(ValueError):
            ca.issue(["a.honey.com", "b.other.com"], at=0.0)

    def test_empty_names_rejected(self, env):
        *_, ca, _ = env
        with pytest.raises(ValueError):
            ca.issue([], at=0.0)

    def test_serials_increment(self, env):
        *_, ca, _ = env
        c1 = ca.issue(["a.honey.com"], at=0.0)
        c2 = ca.issue(["b.honey.com"], at=1.0)
        assert c2.serial == c1.serial + 1


class TestAcme:
    def test_happy_path(self, env):
        registrar, resolver, log, ca, client = env
        cert = client.obtain(["honey.com", "www.honey.com"], at=100.0)
        assert cert.covers("www.honey.com")
        # challenge TXT records cleaned up
        from repro.dns.records import RRType

        assert resolver.resolve("_acme-challenge.honey.com", RRType.TXT,
                                1e9) == []

    def test_ct_visibility_within_seconds(self, env):
        _, _, log, _, client = env
        client.obtain(["honey.com"], at=100.0)
        names = log.names_between(100.0, 120.0)
        assert "honey.com" in names
        assert names["honey.com"] - 100.0 < 10.0

    def test_validation_fails_without_challenge(self, env):
        *_, client = env
        order = client.new_order(["honey.com"], at=100.0)
        with pytest.raises(ChallengeFailed):
            client.validate_and_issue(order, at=110.0)

    def test_validation_fails_with_wrong_token(self, env):
        registrar, *_, client = env
        order = client.new_order(["honey.com"], at=100.0)
        registrar.set_txt("_acme-challenge.honey.com", "wrong", at=100.0)
        with pytest.raises(ChallengeFailed):
            client.validate_and_issue(order, at=110.0)

    def test_order_requires_names(self, env):
        *_, client = env
        with pytest.raises(ValueError):
            client.new_order([], at=0.0)

    def test_order_tracking(self, env):
        *_, client = env
        order = client.new_order(["honey.com"], at=0.0)
        assert not order.fulfilled
        client.install_challenges(order, at=0.0)
        client.validate_and_issue(order, at=10.0)
        assert order.fulfilled
