"""Tests for the calibrated population builder."""

import pytest

from repro.datasets.asdb import AsCategory
from repro.scanners.identity import AllocationMode
from repro.scanners.population import PopulationSpec, build_population
from repro.sim.fabric import InternetFabric


@pytest.fixture(scope="module")
def population():
    fabric = InternetFabric(rng=3)
    spec = PopulationSpec(volume_scale=1e-4, n_tail=40)
    return fabric, build_population(fabric, spec, rng=4)


def test_heavy_hitters_present(population):
    _, agents = population
    names = {a.identity.as_name for a in agents}
    for expected in ("AMAZON-02", "CNGI-CERNET", "AMAZON-AES",
                     "TSINGHUA-UNIVERSITY", "HURRICANE", "DIGITALOCEAN",
                     "ALPHASTRIKE-LABS", "SHADOWSERVER",
                     "INTERNET-MEASUREMENT"):
        assert expected in names


def test_all_agents_registered_in_metadata(population):
    fabric, agents = population
    for agent in agents:
        identity = agent.identity
        assert identity.asn in fabric.asdb
        probe = identity.source_prefix.network | 1
        assert fabric.prefix2as.lookup(probe) == identity.asn
        assert fabric.geodb.lookup(probe) == identity.country


def test_scanner_ases_overridden(population):
    fabric, _ = population
    # The paper manually pinned these to Internet Scanner.
    for asn in (208843, 211298, 63931):
        assert fabric.asdb.classify(asn) is AsCategory.INTERNET_SCANNER


def test_alphastrike_spreads_per_packet_over_30(population):
    _, agents = population
    alpha = next(a for a in agents
                 if a.identity.as_name == "ALPHASTRIKE-LABS")
    assert alpha.identity.allocation is AllocationMode.PER_PACKET
    assert alpha.identity.source_prefix.length == 30
    assert alpha.identity.country == "DE"


def test_cernet_pool_shape(population):
    _, agents = population
    cernet = next(a for a in agents if a.identity.as_name == "CNGI-CERNET")
    assert cernet.identity.pool_size == 46
    assert cernet.identity.pool_subnets == 4


def test_tail_count(population):
    _, agents = population
    tails = [a for a in agents if a.identity.as_name.startswith("TAIL-AS")]
    assert len(tails) == 40
    assert all(a.strategies for a in tails)


def test_source_scale_shrinks_pools():
    fabric = InternetFabric(rng=5)
    spec = PopulationSpec(volume_scale=1e-4, n_tail=0,
                          source_scale=0.01)
    agents = build_population(fabric, spec, rng=6)
    amazon = next(a for a in agents if a.identity.as_name == "AMAZON-02")
    assert amazon.identity.pool_size == 440


def test_heavy_hitters_can_be_disabled():
    fabric = InternetFabric(rng=7)
    spec = PopulationSpec(volume_scale=1e-4, n_tail=5,
                          include_heavy_hitters=False,
                          include_scanner_ases=False)
    agents = build_population(fabric, spec, rng=8)
    names = {a.identity.as_name for a in agents}
    assert all(n.startswith(("TAIL-AS", "CURIOUS-AS")) for n in names)
