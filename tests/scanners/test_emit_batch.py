"""Equivalence of the columnar emission fast path with the reference loop.

The contract (enforced here): under the same seed, ``emit_day_batch`` draws
*identical* per-day Poisson counts as ``emit_day`` (both consume the agent's
main stream the same way), and the packet contents — sources, targets,
protocols, ports — follow the same marginal distributions.  The satellites
ride along: the emission window clamp (cancelled/expired sessions stop
emitting when their rate does) and the ``poll_feeds`` overflow counter.
"""

import numpy as np
import pytest

from repro._util import DAY
from repro.datasets.asdb import AsCategory
from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6, TCP, UDP
from repro.obs.registry import MetricsRegistry, use_registry
from repro.scanners.agent import ScannerAgent
from repro.scanners.identity import AllocationMode, ScannerIdentity
from repro.scanners.strategies import (
    ProbeBatch,
    ProbeTarget,
    ProtocolProfile,
    Strategy,
    prefix_sampler,
    targets_to_columns,
)

SOURCE_PREFIX = IPv6Prefix.parse("2a0e:5c00::/30")
TARGET_PREFIX = IPv6Prefix.parse("2001:db8:40::/48")
PROFILE = ProtocolProfile(icmp_weight=0.5, tcp_weight=0.3, udp_weight=0.2)


class _FixedBatch(Strategy):
    """Hands out one predetermined ProbeBatch on the first poll."""

    def __init__(self, batch: ProbeBatch):
        self.batch = batch
        self._given = False

    def poll(self, since, until, rng):
        if self._given:
            return []
        self._given = True
        return [self.batch]


def _agent(strategies, seed=5, allocation=AllocationMode.PER_PACKET,
           **identity_kwargs):
    identity = ScannerIdentity(
        asn=64500, as_name="EQ-TEST", category=AsCategory.HOSTING_CLOUD,
        country="US", source_prefix=SOURCE_PREFIX, allocation=allocation,
        **identity_kwargs,
    )
    return ScannerAgent(identity, strategies, rng=seed, volume_scale=1.0)


def _probe_batch(rate=30_000.0, start=0.0, **kwargs):
    return ProbeBatch(
        trigger="ambient", start=start,
        sampler=prefix_sampler(TARGET_PREFIX, PROFILE),
        peak_rate=rate, floor_rate=rate, **kwargs,
    )


def _twin_agents(seed=5, rate=30_000.0, allocation=AllocationMode.PER_PACKET):
    """Two identically seeded agents with one steady session each."""
    agents = []
    for _ in range(2):
        agent = _agent([_FixedBatch(_probe_batch(rate))], seed=seed,
                       allocation=allocation)
        agent.poll_feeds(0.0, DAY)
        agents.append(agent)
    return agents


class TestCountEquality:
    def test_per_day_counts_identical(self):
        ref, fast = _twin_agents(seed=7, rate=2_000.0)
        for day in range(5):
            packets = ref.emit_day(day * DAY, (day + 1) * DAY)
            batch = fast.emit_day_batch(day * DAY, (day + 1) * DAY)
            assert len(packets) == len(batch)
        assert ref.packets_emitted == fast.packets_emitted

    def test_session_accounting_matches(self):
        ref, fast = _twin_agents(seed=3, rate=500.0)
        ref.emit_day(0.0, DAY)
        fast.emit_day_batch(0.0, DAY)
        assert (ref.sessions[0].packets_sent
                == fast.sessions[0].packets_sent)


class TestMarginalEquivalence:
    """Content distributions match between paths (randomized, fixed seed)."""

    N_DAYS = 3
    RATE = 30_000.0

    @pytest.fixture(scope="class")
    def emissions(self):
        ref, fast = _twin_agents(seed=11, rate=self.RATE)
        packets, batches = [], []
        for day in range(self.N_DAYS):
            packets.extend(ref.emit_day(day * DAY, (day + 1) * DAY))
            batches.append(fast.emit_day_batch(day * DAY, (day + 1) * DAY))
        from repro.net.batch import PacketBatch

        return packets, PacketBatch.concat(batches)

    def test_protocol_mix(self, emissions):
        packets, batch = emissions
        for proto in (ICMPV6, TCP, UDP):
            ref_frac = sum(p.proto == proto for p in packets) / len(packets)
            fast_frac = float((batch.proto == proto).mean())
            assert abs(ref_frac - fast_frac) < 0.02

    def test_target_low_subnet_concentration(self, emissions):
        """prefix_sampler's low/high split survives vectorization."""
        packets, batch = emissions
        net_hi = TARGET_PREFIX.network >> 64

        def low_frac_ref():
            low = sum(1 for p in packets
                      if (p.dst >> 64) - net_hi < 8 and (p.dst & ((1 << 64) - 1)) < 64)
            return low / len(packets)

        low_fast = float((((batch.dst_hi - np.uint64(net_hi)) < 8)
                          & (batch.dst_lo < 64)).mean())
        assert abs(low_frac_ref() - low_fast) < 0.02

    def test_sport_distribution(self, emissions):
        packets, batch = emissions
        ref_sports = np.array([p.sport for p in packets if p.proto != ICMPV6])
        fast_sports = batch.sport[batch.proto != np.uint8(ICMPV6)]
        for arr in (ref_sports, fast_sports):
            assert arr.min() >= 32_768 and arr.max() < 61_000
        assert abs(ref_sports.mean() - float(fast_sports.mean())) < 300

    def test_source_spread_per_packet(self, emissions):
        packets, batch = emissions
        ref_unique = len({p.src for p in packets}) / len(packets)
        fast_unique = (len(np.unique(
            np.stack([batch.src_hi, batch.src_lo]), axis=1,
        )[0]) / len(batch))
        # PER_PACKET: essentially every packet a fresh source, both paths.
        assert ref_unique > 0.99 and fast_unique > 0.99

    def test_icmp_rows_are_echo_requests(self, emissions):
        _, batch = emissions
        icmp = batch.proto == np.uint8(ICMPV6)
        assert (batch.sport[icmp] == 128).all()
        assert (batch.dport[icmp] == 0).all()


class TestAllocatorModes:
    @pytest.mark.parametrize("allocation", [
        AllocationMode.FIXED,
        AllocationMode.SMALL_POOL,
        AllocationMode.PER_SESSION,
    ])
    def test_batch_sources_come_from_allocator_pool(self, allocation):
        kwargs = {"pool_size": 8} if allocation is AllocationMode.SMALL_POOL else {}
        agent = _agent([_FixedBatch(_probe_batch(2_000.0))], seed=9,
                       allocation=allocation, **kwargs)
        agent.poll_feeds(0.0, DAY)
        batch = agent.emit_day_batch(0.0, DAY)
        assert len(batch) > 0
        sources = {(int(h) << 64) | int(l)
                   for h, l in zip(batch.src_hi, batch.src_lo)}
        assert sources <= agent.allocator.used
        if allocation is AllocationMode.FIXED:
            assert len(sources) == 1
        elif allocation is AllocationMode.SMALL_POOL:
            assert len(sources) <= 8


class TestFallbackSampler:
    def test_plain_sampler_goes_through_columns(self):
        targets = [ProbeTarget(TARGET_PREFIX.network | 1, ICMPV6),
                   ProbeTarget(TARGET_PREFIX.network | 2, TCP, 443)]

        def sampler(rng, n):
            return [targets[i % 2] for i in range(n)]

        assert not hasattr(sampler, "sample_batch")
        agent = _agent([_FixedBatch(ProbeBatch(
            trigger="ambient", start=0.0, sampler=sampler,
            peak_rate=500.0, floor_rate=500.0,
        ))], seed=2)
        agent.poll_feeds(0.0, DAY)
        batch = agent.emit_day_batch(0.0, DAY)
        assert len(batch) > 0
        assert set(batch.dst_lo.tolist()) == {1, 2}

    def test_short_sampler_truncates_timestamps(self):
        """A sampler returning fewer targets than asked truncates the batch
        the same way the scalar zip does."""

        def sampler(rng, n):
            return [ProbeTarget(TARGET_PREFIX.network | 1, ICMPV6)] * min(n, 3)

        agent = _agent([_FixedBatch(ProbeBatch(
            trigger="ambient", start=0.0, sampler=sampler,
            peak_rate=500.0, floor_rate=500.0,
        ))], seed=2)
        agent.poll_feeds(0.0, DAY)
        batch = agent.emit_day_batch(0.0, DAY)
        assert len(batch) == 3
        assert agent.packets_emitted == 3

    def test_targets_to_columns_empty(self):
        dst_hi, dst_lo, proto, dport = targets_to_columns([])
        assert len(dst_hi) == len(dst_lo) == len(proto) == len(dport) == 0


class TestEmissionWindowClamp:
    """Satellite: timestamps stop where ``expected_packets`` stops counting
    (the §5.3.1 retraction tail regression)."""

    CANCEL_AT = 0.25 * DAY

    def _one_session_agent(self, batch, seed=5):
        agent = _agent([_FixedBatch(batch)], seed=seed)
        agent.poll_feeds(0.0, DAY)
        return agent

    @pytest.mark.parametrize("emit", ["scalar", "batch"])
    def test_cancelled_session_stops_at_cancellation(self, emit):
        probe = _probe_batch(rate=50_000.0)
        probe.cancel(self.CANCEL_AT)
        agent = self._one_session_agent(probe)
        if emit == "scalar":
            ts = [p.timestamp for p in agent.emit_day(0.0, DAY)]
        else:
            ts = agent.emit_day_batch(0.0, DAY).ts.tolist()
        assert ts, "cancelled-at-25% session must still emit a morning tail"
        assert max(ts) <= self.CANCEL_AT

    @pytest.mark.parametrize("emit", ["scalar", "batch"])
    def test_expiring_session_stops_at_expiry(self, emit):
        probe = _probe_batch(rate=50_000.0, duration=0.5 * DAY)
        agent = self._one_session_agent(probe)
        if emit == "scalar":
            ts = [p.timestamp for p in agent.emit_day(0.0, DAY)]
        else:
            ts = agent.emit_day_batch(0.0, DAY).ts.tolist()
        assert ts
        assert max(ts) <= 0.5 * DAY

    def test_retraction_tail_density_matches_window(self):
        """The retraction tail is a *quarter day* of traffic at full rate,
        not a full day of thinned traffic: timestamps must be uniform over
        [0, cancelled_at), so their mean sits near the window midpoint."""
        probe = _probe_batch(rate=200_000.0)
        probe.cancel(self.CANCEL_AT)
        agent = self._one_session_agent(probe, seed=17)
        ts = np.asarray(agent.emit_day_batch(0.0, DAY).ts)
        assert abs(ts.mean() - self.CANCEL_AT / 2) < 0.02 * DAY


class _Firehose(Strategy):
    """Returns ``per_poll`` fresh batches on every poll."""

    def __init__(self, per_poll: int):
        self.per_poll = per_poll

    def poll(self, since, until, rng):
        return [_probe_batch(rate=10.0, start=since)
                for _ in range(self.per_poll)]


class TestSessionOverflow:
    """Satellite: batches discarded at ``max_sessions`` are counted."""

    def test_drops_counted(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            agent = _agent([_Firehose(10)], seed=1)
            agent.max_sessions = 4
            new = agent.poll_feeds(0.0, DAY)
        assert new == 4
        assert len(agent.sessions) == 4
        assert agent.sessions_dropped == 6
        assert registry.counter("agent.sessions.dropped").value == 6

    def test_no_drops_below_cap(self):
        agent = _agent([_Firehose(3)], seed=1)
        agent.poll_feeds(0.0, DAY)
        assert agent.sessions_dropped == 0

    def test_drops_accumulate_across_polls(self):
        agent = _agent([_Firehose(5)], seed=1)
        agent.max_sessions = 5
        agent.poll_feeds(0.0, DAY)
        agent.poll_feeds(DAY, 2 * DAY)
        assert len(agent.sessions) == 5
        assert agent.sessions_dropped == 5
