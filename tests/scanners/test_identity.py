"""Tests for scanner identities and source allocation."""

import pytest

from repro.datasets.asdb import AsCategory
from repro.net.addr import IPv6Prefix
from repro.scanners.identity import (
    AllocationMode,
    ScannerIdentity,
    SourceAllocator,
)

PREFIX = IPv6Prefix.parse("2a0e:5c00::/30")


def _identity(**kwargs):
    defaults = dict(
        asn=64500, as_name="X", category=AsCategory.HOSTING_CLOUD,
        country="US", source_prefix=PREFIX,
        allocation=AllocationMode.FIXED,
    )
    defaults.update(kwargs)
    return ScannerIdentity(**defaults)


class TestValidation:
    def test_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            _identity(asn=0)

    def test_rejects_bad_pool(self):
        with pytest.raises(ValueError):
            _identity(pool_size=0)
        with pytest.raises(ValueError):
            _identity(pool_subnets=-1)


class TestFixed:
    def test_single_stable_source(self):
        allocator = SourceAllocator(_identity(), rng=0)
        sources = {allocator.source() for _ in range(20)}
        assert len(sources) == 1
        assert next(iter(sources)) in PREFIX


class TestSmallPool:
    def test_pool_size_respected(self):
        allocator = SourceAllocator(
            _identity(allocation=AllocationMode.SMALL_POOL, pool_size=46),
            rng=0,
        )
        sources = {allocator.source() for _ in range(2000)}
        assert len(sources) == 46

    def test_clustered_pool_shapes_64s(self):
        """Table 3's shape: many /128s inside few /64s."""
        allocator = SourceAllocator(
            _identity(allocation=AllocationMode.SMALL_POOL,
                      pool_size=400, pool_subnets=4),
            rng=0,
        )
        sources = {allocator.source() for _ in range(20_000)}
        subnets = {s >> 64 for s in sources}
        assert len(sources) == 400
        assert len(subnets) == 4

    def test_clustering_requires_short_prefix(self):
        identity = _identity(
            source_prefix=IPv6Prefix.parse("2a0e::1/128"),
            allocation=AllocationMode.SMALL_POOL, pool_subnets=4,
        )
        with pytest.raises(ValueError):
            SourceAllocator(identity, rng=0)


class TestPerSession:
    def test_source_changes_per_session(self):
        allocator = SourceAllocator(
            _identity(allocation=AllocationMode.PER_SESSION), rng=0,
        )
        first = allocator.source()
        assert allocator.source() == first  # stable within a session
        allocator.new_session()
        assert allocator.source() != first
        assert len(allocator.used) == 2


class TestPerPacket:
    def test_every_packet_fresh(self):
        allocator = SourceAllocator(
            _identity(allocation=AllocationMode.PER_PACKET), rng=0,
        )
        sources = [allocator.source() for _ in range(100)]
        assert len(set(sources)) == 100
        assert all(s in PREFIX for s in sources)


class TestTargetSlice:
    def test_slice_size(self):
        allocator = SourceAllocator(
            _identity(allocation=AllocationMode.SMALL_POOL, pool_size=100,
                      sources_per_target=10),
            rng=0,
        )
        subset = allocator.target_slice()
        assert len(subset) == 10
        assert len(set(subset)) == 10

    def test_no_slice_without_config(self):
        allocator = SourceAllocator(
            _identity(allocation=AllocationMode.SMALL_POOL, pool_size=100),
            rng=0,
        )
        assert allocator.target_slice() is None

    def test_no_slice_when_pool_smaller(self):
        allocator = SourceAllocator(
            _identity(allocation=AllocationMode.SMALL_POOL, pool_size=5,
                      sources_per_target=10),
            rng=0,
        )
        assert allocator.target_slice() is None
