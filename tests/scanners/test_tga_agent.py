"""Tests for the pattern TGA and scanner agents."""

import numpy as np
import pytest

from repro._util import DAY
from repro.datasets.asdb import AsCategory
from repro.net.addr import IPv6Prefix, parse_address
from repro.net.packet import ICMPV6
from repro.scanners.agent import ScanSession, ScannerAgent
from repro.scanners.identity import AllocationMode, ScannerIdentity
from repro.scanners.strategies import (
    AmbientScanner,
    ProbeBatch,
    ProbeTarget,
    ProtocolProfile,
    Strategy,
)
from repro.scanners.tga import NibblePattern, PatternTga, mine_patterns

PREFIX = IPv6Prefix.parse("2001:db8:5::/48")


class TestMinePatterns:
    def test_groups_by_prefix(self):
        seeds = [PREFIX.network | 1, PREFIX.network | 2,
                 parse_address("2001:db9::1")]
        patterns = mine_patterns(seeds, 48)
        assert len(patterns) == 2

    def test_unaligned_group_rejected(self):
        with pytest.raises(ValueError):
            mine_patterns([1], 45)

    def test_generated_stay_in_prefix(self, rng):
        seeds = [PREFIX.network | i for i in (1, 2, 3, 0x100)]
        (pattern,) = mine_patterns(seeds, 48)
        for addr in pattern.generate(rng, 100):
            assert addr in PREFIX

    def test_low_diversity_nibbles_preserved(self, rng):
        # All seeds share zero nibbles except the last one.
        seeds = [PREFIX.network | i for i in range(1, 5)]
        (pattern,) = mine_patterns(seeds, 48)
        for addr in pattern.generate(rng, 50):
            # Middle nibbles stay zero (observed values only).
            assert (addr >> 4) & ((1 << 72) - 1) == 0


class TestGenerateColumns:
    """The columnar generator mirrors the scalar nibble loop."""

    def test_columns_stay_in_prefix_and_pattern(self, rng):
        seeds = [PREFIX.network | i for i in range(1, 5)]
        (pattern,) = mine_patterns(seeds, 48)
        hi, lo = pattern.generate_columns(rng, 200)
        assert hi.dtype == np.uint64 and lo.dtype == np.uint64
        for h, l in zip(hi.tolist(), lo.tolist()):
            addr = (h << 64) | l
            assert addr in PREFIX
            assert (addr >> 4) & ((1 << 72) - 1) == 0

    def test_nibble_marginals_match_scalar(self, rng):
        seeds = [PREFIX.network | (i << 64) | (i % 3) for i in range(24)]
        (pattern,) = mine_patterns(seeds, 48)
        scalar = pattern.generate(np.random.default_rng(1), 4000)
        hi, lo = pattern.generate_columns(np.random.default_rng(2), 4000)
        scalar_lo = np.array([a & ((1 << 64) - 1) for a in scalar],
                             dtype=np.uint64)
        # Last nibble draws from the observed set {0, 1, 2} on both paths.
        for value in range(3):
            ref = float((scalar_lo & np.uint64(0xF) == value).mean())
            col = float((lo & np.uint64(0xF) == value).mean())
            assert abs(ref - col) < 0.05

    def test_sampler_batch_matches_scalar_marginals(self, rng):
        other = IPv6Prefix.parse("2001:db8:6::/48")
        seeds = ([PREFIX.network | i for i in range(6)]
                 + [other.network | i for i in range(6)])
        tga = PatternTga(lambda s, u: seeds,
                         profile=ProtocolProfile(icmp_weight=0.6,
                                                 tcp_weight=0.4))
        (batch,) = tga.poll(0.0, 100.0, rng)
        sampler = batch.sampler
        targets = sampler(np.random.default_rng(3), 4000)
        dst_hi, dst_lo, proto, dport = sampler.sample_batch(
            np.random.default_rng(4), 4000)
        assert len(dst_hi) == 4000
        # Pattern choice is uniform on both paths.
        ref_share = sum(t.address in PREFIX for t in targets) / 4000
        col_share = float(
            (dst_hi == np.uint64(PREFIX.network >> 64)).mean())
        assert abs(ref_share - col_share) < 0.05
        # Protocol mix follows the profile on both paths.
        ref_icmp = sum(t.proto == ICMPV6 for t in targets) / 4000
        col_icmp = float((proto == np.uint8(ICMPV6)).mean())
        assert abs(ref_icmp - col_icmp) < 0.05


class TestPatternTga:
    def test_emits_batch_on_seeds(self, rng):
        tga = PatternTga(lambda s, u: [PREFIX.network | 1])
        batches = tga.poll(0.0, 100.0, rng)
        assert len(batches) == 1
        targets = batches[0].sampler(rng, 20)
        assert all(t.address in PREFIX for t in targets)

    def test_no_seeds_no_batch(self, rng):
        tga = PatternTga(lambda s, u: [])
        assert tga.poll(0.0, 100.0, rng) == []

    def test_renewal_cancels_previous(self, rng):
        feed = [[PREFIX.network | 1], [PREFIX.network | 2]]
        tga = PatternTga(lambda s, u: feed.pop(0) if feed else [])
        first = tga.poll(0.0, 100.0, rng)[0]
        second = tga.poll(100.0, 200.0, rng)[0]
        assert first.cancelled_at is not None
        assert second.cancelled_at is None

    def test_purge_via_removal_source(self, rng):
        removals = []
        tga = PatternTga(
            lambda s, u: [PREFIX.network | 1] if u <= 100.0 else [],
            removal_source=lambda s, u: removals,
        )
        tga.poll(0.0, 100.0, rng)
        removals.append(PREFIX.network | 1)
        batches = tga.poll(100.0, 200.0, rng)
        assert batches == []
        assert tga.seeds == []
        assert tga._current_batch is None or tga._current_batch.cancelled_at


class _OneShot(Strategy):
    def __init__(self, batch):
        self.batch = batch
        self._done = False

    def poll(self, since, until, rng):
        if self._done:
            return []
        self._done = True
        return [self.batch]


def _agent(allocation=AllocationMode.FIXED, **kwargs):
    identity = ScannerIdentity(
        asn=64500, as_name="X", category=AsCategory.HOSTING_CLOUD,
        country="US", source_prefix=IPv6Prefix.parse("2620:99::/32"),
        allocation=allocation, **kwargs,
    )
    return identity


class TestScannerAgent:
    def test_emission_rate_matches_envelope(self):
        batch = ProbeBatch(
            "t", start=0.0,
            sampler=lambda r, n: [ProbeTarget(1, ICMPV6)] * n,
            peak_rate=500.0, floor_rate=500.0, decay_tau=DAY,
        )
        agent = ScannerAgent(_agent(), [_OneShot(batch)], rng=0)
        agent.poll_feeds(0.0, DAY)
        packets = agent.emit_day(0.0, DAY)
        assert 380 <= len(packets) <= 620  # Poisson(500)
        assert all(p.dst == 1 for p in packets)
        assert agent.packets_emitted == len(packets)

    def test_timestamps_within_day_and_sorted(self):
        batch = ProbeBatch(
            "t", start=0.5 * DAY,
            sampler=lambda r, n: [ProbeTarget(1, ICMPV6)] * n,
            peak_rate=200.0, floor_rate=200.0,
        )
        agent = ScannerAgent(_agent(), [_OneShot(batch)], rng=0)
        agent.poll_feeds(0.0, DAY)
        packets = agent.emit_day(0.0, DAY)
        times = [p.timestamp for p in packets]
        assert times == sorted(times)
        assert all(0.5 * DAY <= t < DAY for t in times)

    def test_cancel_prefix_stops_emission(self):
        prefix = IPv6Prefix.parse("2001:db8:5::/48")
        batch = ProbeBatch(
            "bgp", start=0.0,
            sampler=lambda r, n: [ProbeTarget(prefix.network | 1,
                                              ICMPV6)] * n,
            peak_rate=100.0, floor_rate=100.0, subject_prefix=prefix,
        )
        agent = ScannerAgent(_agent(), [_OneShot(batch)], rng=0)
        agent.poll_feeds(0.0, DAY)
        assert agent.cancel_prefix(prefix, at=DAY) == 1
        assert agent.emit_day(DAY, 2 * DAY) == []

    def test_cancel_prefix_matches_contained(self):
        covering = IPv6Prefix.parse("2001:db8::/32")
        specific = IPv6Prefix.parse("2001:db8:5:8000::/56")
        batch = ProbeBatch("bgp", start=0.0, sampler=lambda r, n: [],
                           peak_rate=1.0, subject_prefix=specific)
        agent = ScannerAgent(_agent(), [_OneShot(batch)], rng=0)
        agent.poll_feeds(0.0, DAY)
        assert agent.cancel_prefix(covering, at=DAY) == 1

    def test_session_retirement(self):
        batch = ProbeBatch("t", start=0.0, sampler=lambda r, n: [],
                           peak_rate=1.0, duration=DAY)
        agent = ScannerAgent(_agent(), [_OneShot(batch)], rng=0)
        agent.poll_feeds(0.0, DAY)
        assert len(agent.sessions) == 1
        agent.emit_day(3 * DAY, 4 * DAY)
        assert agent.sessions == []

    def test_max_sessions_cap(self):
        batches = [
            ProbeBatch("t", start=0.0, sampler=lambda r, n: [],
                       peak_rate=1.0)
            for _ in range(10)
        ]

        class _Many(Strategy):
            def poll(self, since, until, rng):
                return batches

        agent = ScannerAgent(_agent(), [_Many()], rng=0, max_sessions=5)
        agent.poll_feeds(0.0, DAY)
        assert len(agent.sessions) == 5

    def test_ambient_batches_use_whole_pool(self):
        """Ambient scans are exempt from per-target worker slicing."""
        identity = _agent(allocation=AllocationMode.SMALL_POOL,
                          pool_size=100, sources_per_target=5)
        prefix = IPv6Prefix.parse("2001:db8:5::/48")
        agent = ScannerAgent(
            identity,
            [AmbientScanner(prefix, ProtocolProfile(icmp_weight=1.0),
                            rate=2000.0)],
            rng=0,
        )
        agent.poll_feeds(0.0, DAY)
        packets = agent.emit_day(0.0, DAY)
        sources = {p.src for p in packets}
        assert len(sources) > 50

    def test_triggered_batches_use_slice(self):
        identity = _agent(allocation=AllocationMode.SMALL_POOL,
                          pool_size=100, sources_per_target=5)
        batch = ProbeBatch(
            "bgp", start=0.0,
            sampler=lambda r, n: [ProbeTarget(1, ICMPV6)] * n,
            peak_rate=2000.0, floor_rate=2000.0,
        )
        agent = ScannerAgent(identity, [_OneShot(batch)], rng=0)
        agent.poll_feeds(0.0, DAY)
        packets = agent.emit_day(0.0, DAY)
        assert len({p.src for p in packets}) == 5


class TestScanSession:
    def test_expected_packets_partial_day(self):
        batch = ProbeBatch("t", start=0.5 * DAY, sampler=lambda r, n: [],
                           peak_rate=100.0, floor_rate=100.0)
        session = ScanSession(batch)
        assert session.expected_packets(0.0, DAY) == pytest.approx(50.0)

    def test_expected_packets_cancelled(self):
        batch = ProbeBatch("t", start=0.0, sampler=lambda r, n: [],
                           peak_rate=100.0, floor_rate=100.0)
        batch.cancel(0.25 * DAY)
        session = ScanSession(batch)
        assert session.expected_packets(0.0, DAY) == pytest.approx(25.0)

    def test_expected_packets_outside_window(self):
        batch = ProbeBatch("t", start=5 * DAY, sampler=lambda r, n: [],
                           peak_rate=100.0)
        session = ScanSession(batch)
        assert session.expected_packets(0.0, DAY) == 0.0
