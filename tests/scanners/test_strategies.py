"""Tests for the target-generation strategies."""

import numpy as np
import pytest

from repro._util import DAY
from repro.dns.registry import Registrar, TldRegistry
from repro.dns.resolver import Resolver
from repro.dns.reverse import ReverseZone
from repro.hitlist.categories import HitlistCategory
from repro.hitlist.prober import CallableOracle, Prober
from repro.hitlist.service import HitlistService
from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6, TCP, UDP
from repro.routing.collectors import CollectorSystem
from repro.routing.messages import Announcement
from repro.scanners.strategies import (
    AmbientScanner,
    BgpWatcher,
    CoveringSweeper,
    CtLogWatcher,
    HitlistConsumer,
    ProbeBatch,
    ProtocolProfile,
    RdnsWalkerStrategy,
    ZoneFileWatcher,
    address_list_sampler,
    prefix_sampler,
    ProbeTarget,
)
from repro.tlsca.cert import Certificate
from repro.tlsca.ctlog import CtLog

PREFIX = IPv6Prefix.parse("2001:db8:5::/48")
ICMP_ONLY = ProtocolProfile(icmp_weight=1.0)


class TestProbeBatch:
    def test_envelope_decay(self):
        batch = ProbeBatch("t", start=0.0, sampler=lambda r, n: [],
                           peak_rate=100.0, floor_rate=10.0,
                           decay_tau=10 * DAY)
        assert batch.rate_at(0.0) == pytest.approx(100.0)
        assert batch.rate_at(10 * DAY) == pytest.approx(
            10 + 90 * np.exp(-1), rel=1e-6
        )
        assert batch.rate_at(1000 * DAY) == 0.0  # past duration
        assert batch.rate_at(-1.0) == 0.0

    def test_cancel_is_idempotent_and_keeps_earliest(self):
        batch = ProbeBatch("t", start=0.0, sampler=lambda r, n: [],
                           peak_rate=100.0)
        batch.cancel(50.0)
        batch.cancel(80.0)
        assert batch.cancelled_at == 50.0
        assert batch.rate_at(60.0) == 0.0
        assert batch.rate_at(40.0) > 0


class TestSamplers:
    def test_prefix_sampler_in_prefix(self, rng):
        sampler = prefix_sampler(PREFIX, ICMP_ONLY, low_weight=0.5)
        for target in sampler(rng, 200):
            assert target.address in PREFIX
            assert target.proto == ICMPV6

    def test_prefix_sampler_low_bias(self, rng):
        sampler = prefix_sampler(PREFIX, ICMP_ONLY, low_weight=1.0)
        targets = sampler(rng, 100)
        # all low addresses: host part < 64 within the first 8 /64s
        assert all((t.address & 0xFFFFFFFFFFFFFFFF) < 64 for t in targets)

    def test_address_list_sampler(self, rng):
        targets = [ProbeTarget(1, ICMPV6), ProbeTarget(2, TCP, 80)]
        sampler = address_list_sampler(targets)
        drawn = sampler(rng, 50)
        assert set(t.address for t in drawn) <= {1, 2}

    def test_address_list_sampler_rejects_empty(self):
        with pytest.raises(ValueError):
            address_list_sampler([])

    def test_protocol_profile_mix(self, rng):
        profile = ProtocolProfile(icmp_weight=0.5, tcp_weight=0.5,
                                  tcp_ports=(80,))
        protos = {profile.sample(rng, 1).proto for _ in range(100)}
        assert protos == {ICMPV6, TCP}

    def test_protocol_profile_rejects_zero_weights(self, rng):
        with pytest.raises(ValueError):
            ProtocolProfile(icmp_weight=0, tcp_weight=0,
                            udp_weight=0).sample(rng, 1)


class TestBgpWatcher:
    def _system_with(self, prefix: str, at: float = 100.0):
        system = CollectorSystem(rng=0)
        system.announce(Announcement(IPv6Prefix.parse(prefix), 64500, at,
                                     (64500,)))
        return system

    def test_reacts_to_new_prefix(self, rng):
        system = self._system_with("2001:db8:5::/48")
        watcher = BgpWatcher(system, ICMP_ONLY)
        batches = watcher.poll(0.0, 1e6, rng)
        assert len(batches) == 1
        assert batches[0].subject_prefix == IPv6Prefix.parse("2001:db8:5::/48")
        assert batches[0].start > 100.0

    def test_does_not_react_twice(self, rng):
        system = self._system_with("2001:db8:5::/48")
        watcher = BgpWatcher(system, ICMP_ONLY)
        watcher.poll(0.0, 1e6, rng)
        assert watcher.poll(0.0, 1e6, rng) == []

    def test_min_collectors_skips_hyper_specifics(self, rng):
        system = self._system_with("2001:db8:5:8000::/56")
        watcher = BgpWatcher(system, ICMP_ONLY, min_collectors=10)
        assert watcher.poll(0.0, 1e6, rng) == []

    def test_attention_probability_zero(self, rng):
        system = self._system_with("2001:db8:5::/48")
        watcher = BgpWatcher(system, ICMP_ONLY, attention_probability=0.0)
        assert watcher.poll(0.0, 1e6, rng) == []

    def test_withdrawn_prefixes_feed(self, rng):
        from repro.routing.messages import Withdrawal

        system = self._system_with("2001:db8:5::/48")
        system.withdraw(Withdrawal(IPv6Prefix.parse("2001:db8:5::/48"),
                                   64500, 5000.0))
        watcher = BgpWatcher(system, ICMP_ONLY)
        gone = watcher.withdrawn_prefixes(4000.0, 1e6)
        assert gone == {IPv6Prefix.parse("2001:db8:5::/48")}


class TestZoneFileWatcher:
    @pytest.fixture
    def env(self):
        registrar = Registrar()
        registrar.add_tld(TldRegistry("com"))
        registrar.register_domain("bait.com", at=100.0)
        registrar.set_aaaa("bait.com", PREFIX.network | 0x99, at=100.0)
        resolver = Resolver([registrar])
        feed = lambda s, u: registrar.tld("com").new_domains(s, u)
        return feed, resolver

    def test_resolves_and_probes(self, env, rng):
        feed, resolver = env
        watcher = ZoneFileWatcher(feed, resolver)
        batches = watcher.poll(0.0, 2 * DAY, rng)
        assert len(batches) == 1
        targets = batches[0].sampler(rng, 50)
        assert all(t.address == PREFIX.network | 0x99 for t in targets)
        protos = {t.proto for t in targets}
        assert ICMPV6 in protos

    def test_seen_names_not_reprocessed(self, env, rng):
        feed, resolver = env
        watcher = ZoneFileWatcher(feed, resolver)
        watcher.poll(0.0, 2 * DAY, rng)
        assert watcher.poll(0.0, 2 * DAY, rng) == []

    def test_unresolvable_names_skipped(self, rng):
        registrar = Registrar()
        registrar.add_tld(TldRegistry("com"))
        registrar.register_domain("empty.com", at=100.0)  # no AAAA
        feed = lambda s, u: registrar.tld("com").new_domains(s, u)
        watcher = ZoneFileWatcher(feed, Resolver([registrar]))
        assert watcher.poll(0.0, 2 * DAY, rng) == []


class TestCtLogWatcher:
    @pytest.fixture
    def env(self):
        registrar = Registrar()
        registrar.add_tld(TldRegistry("com"))
        registrar.register_domain("bait.com", at=0.0)
        registrar.set_aaaa("www.bait.com", PREFIX.network | 0x77, at=0.0)
        resolver = Resolver([registrar])
        log = CtLog()
        log.submit(Certificate(1, ("www.bait.com",), "ca", 100.0, 2e6),
                   at=100.0)
        return log, resolver

    def test_reacts_within_seconds(self, env, rng):
        log, resolver = env
        watcher = CtLogWatcher(log, resolver, reaction_delay=7.0)
        batches = watcher.poll(0.0, 200.0, rng)
        assert len(batches) == 1
        # The paper's DigitalOcean bot arrived 7 seconds after issuance.
        assert batches[0].start - 101.0 < 60.0

    def test_engagement_scales_rate(self, env, rng):
        log, resolver = env
        low = CtLogWatcher(log, resolver, peak_rate=100.0)
        batches_low = low.poll(0.0, 200.0, rng)
        log2, _ = env[0], None
        high = CtLogWatcher(log, resolver, peak_rate=100.0,
                            interaction_oracle=lambda a, t: 2)
        batches_high = high.poll(0.0, 200.0, rng)
        assert batches_high[0].peak_rate > batches_low[0].peak_rate * 3


class TestHitlistConsumer:
    @pytest.fixture
    def hitlist(self):
        oracle = CallableOracle(lambda a, p, q, t: False)
        return HitlistService(Prober(oracle, rng=0))

    def test_probes_manual_entries(self, hitlist, rng):
        hitlist.insert_manual(HitlistCategory.ICMP, at=100.0,
                              address=PREFIX.network | 1)
        consumer = HitlistConsumer(hitlist)
        batches = consumer.poll(0.0, 200.0, rng)
        assert len(batches) == 1
        targets = batches[0].sampler(rng, 10)
        assert all(t.proto == ICMPV6 for t in targets)

    def test_category_probe_mapping(self, hitlist, rng):
        hitlist.insert_manual(HitlistCategory.UDP53, at=100.0, address=5)
        consumer = HitlistConsumer(hitlist)
        targets = consumer.poll(0.0, 200.0, rng)[0].sampler(rng, 10)
        assert all(t.proto == UDP and t.dport == 53 for t in targets)

    def test_aliased_entry_spawns_prefix_batch(self, hitlist, rng):
        hitlist.insert_manual(HitlistCategory.ALIASED, at=100.0,
                              prefix=PREFIX)
        consumer = HitlistConsumer(hitlist)
        batches = consumer.poll(0.0, 200.0, rng)
        assert batches[0].subject_prefix == PREFIX

    def test_aliased_entry_once(self, hitlist, rng):
        hitlist.insert_manual(HitlistCategory.ALIASED, at=100.0,
                              prefix=PREFIX)
        hitlist.insert_manual(HitlistCategory.ALIASED, at=150.0,
                              prefix=PREFIX)
        consumer = HitlistConsumer(hitlist)
        assert len(consumer.poll(0.0, 120.0, rng)) == 1
        assert consumer.poll(120.0, 200.0, rng) == []

    def test_replacement_cancels_previous(self, hitlist, rng):
        hitlist.insert_manual(HitlistCategory.ICMP, at=100.0, address=1)
        consumer = HitlistConsumer(hitlist)
        first = consumer.poll(0.0, 200.0, rng)[0]
        hitlist.insert_manual(HitlistCategory.ICMP, at=300.0, address=2)
        second = consumer.poll(200.0, 400.0, rng)
        assert first.cancelled_at is not None
        assert len(second) == 1

    def test_removal_drops_targets(self, hitlist, rng):
        hitlist.insert_manual(HitlistCategory.ICMP, at=100.0, address=1)
        consumer = HitlistConsumer(hitlist)
        consumer.poll(0.0, 200.0, rng)
        # Revalidation delists the (never-responsive) address.
        hitlist.run_cycle(at=300.0)
        batches = consumer.poll(200.0, 400.0, rng)
        assert batches == []  # nothing left to probe

    def test_icmp_weighting(self, hitlist, rng):
        hitlist.insert_manual(HitlistCategory.ICMP, at=100.0, address=1)
        hitlist.insert_manual(HitlistCategory.TCP80, at=100.0, address=2)
        consumer = HitlistConsumer(hitlist)
        targets = consumer.poll(0.0, 200.0, rng)[0].sampler(rng, 2000)
        icmp = sum(1 for t in targets if t.proto == ICMPV6)
        assert icmp > len(targets) * 0.75


class TestRdnsWalker:
    def test_walks_and_probes(self, rng):
        zone = ReverseZone()
        zone.add_ptr(PREFIX.network | 1, "h.example", at=0.0)
        walker = RdnsWalkerStrategy(zone, [PREFIX])
        batches = walker.poll(0.0, 10 * DAY, rng)
        assert len(batches) == 1
        targets = batches[0].sampler(rng, 10)
        assert all(t.address == PREFIX.network | 1 for t in targets)

    def test_walk_period_respected(self, rng):
        zone = ReverseZone()
        zone.add_ptr(PREFIX.network | 1, "h.example", at=0.0)
        walker = RdnsWalkerStrategy(zone, [PREFIX], walk_period=7 * DAY)
        walker.poll(0.0, 10 * DAY, rng)
        assert walker.poll(10 * DAY, 11 * DAY, rng) == []

    def test_no_new_hosts_no_batch(self, rng):
        zone = ReverseZone()
        zone.add_ptr(PREFIX.network | 1, "h.example", at=0.0)
        walker = RdnsWalkerStrategy(zone, [PREFIX], walk_period=1.0)
        walker.poll(0.0, 10 * DAY, rng)
        assert walker.poll(10 * DAY, 20 * DAY, rng) == []


class TestAmbientAndSweeper:
    def test_ambient_emits_once(self, rng):
        ambient = AmbientScanner(PREFIX, ICMP_ONLY, rate=10.0)
        batches = ambient.poll(0.0, 100.0, rng)
        assert len(batches) == 1
        assert batches[0].trigger == "ambient"
        assert ambient.poll(100.0, 200.0, rng) == []

    def test_sweeper_covers_many_48s(self, rng):
        covering = IPv6Prefix.parse("2001:db8::/32")
        sweeper = CoveringSweeper(covering, ICMP_ONLY, rate=10.0,
                                  low_bias=0.0)
        batch = sweeper.poll(0.0, 100.0, rng)[0]
        targets = batch.sampler(rng, 2000)
        nets = {(t.address >> 80) << 80 for t in targets}
        assert len(nets) > 1000

    def test_sweeper_low_bias(self, rng):
        covering = IPv6Prefix.parse("2001:db8::/32")
        sweeper = CoveringSweeper(covering, ICMP_ONLY, rate=10.0,
                                  low_bias=1.0)
        targets = sweeper.poll(0.0, 100.0, rng)[0].sampler(rng, 100)
        first16 = {covering.subnet_at(i, 48).network for i in range(16)}
        assert all(((t.address >> 80) << 80) in first16 for t in targets)
