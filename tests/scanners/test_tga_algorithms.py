"""Tests for the 6Tree and entropy TGAs and the evaluation harness."""

import numpy as np
import pytest

from repro.net.addr import IPv6Prefix
from repro.scanners.entropy_tga import EntropyTga
from repro.scanners.tga6tree import SixTreeTga, build_space_tree
from repro.scanners.tga_eval import evaluate_tgas

P1 = IPv6Prefix.parse("2001:db8:1::/48")
P2 = IPv6Prefix.parse("2001:db8:2::/48")


def _structured_world():
    """Live hosts: low addresses in the first 16 /64s of P1, plus one
    dense /64 in P2."""
    live = set()
    for subnet in range(16):
        for host in range(1, 40):
            live.add(P1.network | (subnet << 64) | host)
    for host in range(1, 200):
        live.add(P2.network | (0x99 << 64) | host)
    return live


@pytest.fixture
def world(rng):
    live = _structured_world()
    seeds = [int(s) for s in rng.choice(sorted(live), size=60,
                                        replace=False)]
    oracle = lambda addr, at: addr in live
    return live, seeds, oracle


class TestSpaceTree:
    def test_tree_partitions_seeds(self, world):
        _, seeds, _ = world
        tree = build_space_tree(seeds, max_leaf_seeds=8)
        leaf_seeds = []
        stack = [tree]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaf_seeds.extend(node.seeds)
            else:
                stack.extend(node.children)
        assert sorted(leaf_seeds) == sorted(set(seeds))

    def test_children_contain_their_seeds(self, world):
        _, seeds, _ = world
        tree = build_space_tree(seeds)
        stack = list(tree.children)
        while stack:
            node = stack.pop()
            assert all(node.contains(s) for s in node.seeds)
            stack.extend(node.children)

    def test_generate_respects_prefix(self, world, rng):
        _, seeds, _ = world
        tree = build_space_tree(seeds)
        leaf = tree.children[0] if tree.children else tree
        while not leaf.is_leaf:
            leaf = leaf.children[0]
        for candidate in leaf.generate(rng, 50):
            # At most one mutated nibble can break prefix agreement never:
            # the prefix nibbles are fixed bits of the base address.
            assert leaf.contains(candidate)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            SixTreeTga([])


class TestSixTree:
    def test_discovers_and_respects_budget(self, world):
        live, seeds, oracle = world
        tga = SixTreeTga(seeds, rng=0)
        result = tga.run(oracle, budget=800)
        assert result.probes_sent <= 800
        assert result.discovered
        assert result.discovered <= live
        assert 0 < result.hit_rate <= 1.0

    def test_never_reprobes(self, world):
        live, seeds, oracle = world
        probed = []
        tga = SixTreeTga(seeds, rng=0)
        tga.run(lambda a, t: (probed.append(a), a in live)[1], budget=600)
        assert len(probed) == len(set(probed))

    def test_feedback_abandons_stale_regions(self, rng):
        """Most budget must land in the responsive region, not the stale
        seed regions — 6Tree's defining behavior."""
        live = {P1.network | (s << 64) | h
                for s in range(8) for h in range(1, 60)}
        stale = [IPv6Prefix.parse(f"2001:db8:{i:x}0::/48").network
                 | (s << 64) | 1
                 for i in range(1, 9) for s in range(8)]
        seeds = [int(x) for x in rng.choice(sorted(live), size=30,
                                            replace=False)] + stale
        probes_in_live_region = 0
        total_probes = 0

        def oracle(address, at):
            nonlocal probes_in_live_region, total_probes
            total_probes += 1
            if address in P1:
                probes_in_live_region += 1
            return address in live

        tga = SixTreeTga(seeds, rng=1)
        tga.run(oracle, budget=2000)
        # Seed regions are 1 live /48 vs 8 stale /48s: a blind allocator
        # spends ~11% in the live region; feedback concentrates there.
        assert probes_in_live_region / total_probes > 0.4

    def test_rounds_recorded(self, world):
        _, seeds, oracle = world
        result = SixTreeTga(seeds, rng=0).run(oracle, budget=600,
                                              round_size=100)
        assert len(result.rounds) >= 2
        assert sum(r.probes for r in result.rounds) == result.probes_sent


class TestEntropyTga:
    def test_generates_structured_candidates(self, world, rng):
        _, seeds, _ = world
        tga = EntropyTga(seeds, rng=0)
        candidates = tga.generate(500)
        assert len(candidates) == 500
        # Candidates stay inside the seeds' covering /32.
        covering = IPv6Prefix.parse("2001:db8::/32")
        in_covering = sum(1 for c in candidates if c in covering)
        assert in_covering > 450

    def test_clusters_formed(self, world):
        _, seeds, _ = world
        tga = EntropyTga(seeds, rng=0)
        assert len(tga.clusters) >= 2
        assert sum(len(c.seeds) for c in tga.clusters) == len(set(seeds))

    def test_run_interface(self, world):
        live, seeds, oracle = world
        result = EntropyTga(seeds, rng=0).run(oracle, budget=500)
        assert result.probes_sent == 500
        assert result.discovered <= live

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            EntropyTga([])


class TestEvaluation:
    def test_shootout_shapes(self, world):
        live, seeds, oracle = world
        evaluation = evaluate_tgas(seeds, oracle, budget=600, rng=2)
        names = {s.name for s in evaluation.scores}
        assert names == {"random", "pattern", "entropy", "6tree"}
        # Random-in-/32 finds essentially nothing; every informed TGA
        # beats it (the TGA literature's baseline result).
        random_score = evaluation.score("random")
        for name in ("pattern", "entropy", "6tree"):
            assert evaluation.score(name).hit_rate > random_score.hit_rate
        assert "TGA shootout" in evaluation.render()

    def test_overlap_keys(self, world):
        _, seeds, oracle = world
        evaluation = evaluate_tgas(seeds, oracle, budget=300, rng=2)
        assert len(evaluation.overlap) == 6  # C(4,2)

    def test_unknown_score(self, world):
        _, seeds, oracle = world
        evaluation = evaluate_tgas(seeds, oracle, budget=200, rng=2)
        with pytest.raises(KeyError):
            evaluation.score("bogus")
