"""Tests for the run-all report driver and result-class details."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig1,
    fig2,
    table1,
    table3,
)
from repro.experiments.report import run_all


class TestRunAll:
    def test_standalone_subset(self, tmp_path):
        path = tmp_path / "report.txt"
        report = run_all(experiment_ids=["table2", "table7", "fig13"],
                         output_path=path)
        assert "## table2" in report
        assert "## table7" in report
        assert "## fig13" in report
        assert path.read_text() == report

    def test_requires_scenario_when_needed(self):
        with pytest.raises(ValueError, match="ScenarioResult"):
            run_all(experiment_ids=["table1"])

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_all(experiment_ids=["bogus"])

    def test_full_report(self, small_result, tmp_path):
        path = tmp_path / "full.txt"
        report = run_all(small_result, output_path=path)
        for experiment_id in EXPERIMENTS:
            assert f"## {experiment_id}" in report
        assert "# scenario:" in report


class TestResultClassDetails:
    def test_fig1_render_contains_weeks(self):
        rendered = fig1(seed=2).render()
        assert "week" in rendered and "growth factors" in rendered

    def test_fig2_shares_bounded(self):
        result = fig2(seed=2)
        assert 0.0 < result.early_top_share <= 1.0
        assert 0.0 < result.late_top_share <= 1.0

    def test_table1_row_lookup(self, small_result):
        result = table1(small_result)
        with pytest.raises(KeyError):
            result.row("NT-Z")

    def test_table3_rows_sorted(self, small_result):
        result = table3(small_result, n=10)
        packets = [r.packets for r in result.rows]
        assert packets == sorted(packets, reverse=True)
        assert all(r.share <= 1.0 for r in result.rows)


class TestCliAll:
    def test_experiment_all_standalone_only(self, capsys, monkeypatch,
                                            tmp_path):
        """CLI 'all' runs the full registry (uses a tiny scenario)."""
        from repro.__main__ import main

        path = tmp_path / "cli_report.txt"
        code = main([
            "experiment", "all", "--days", "30", "--scale", "5e-5",
            "--tail", "20", "--output", str(path),
        ])
        assert code == 0
        text = path.read_text()
        assert "## table4" in text and "## fig11" in text
        # The retraction happens after this 30-day horizon: noted, not fatal.
        assert "## s531" in text and "skipped" in text
