"""Tests for the CDN longitudinal experiments (`repro.experiments.cdn_growth`).

Each driver gets a small shared vantage (24 weeks — enough for the 8+8
trend windows); the assertions check that the rendered rows are
internally consistent: shares descending and summing below one, growth
factors finite and positive, and week axes matching the series lengths.
"""

import math

import numpy as np
import pytest

from repro.experiments.cdn_growth import (
    _trend_ratio,
    fig1,
    fig2,
    fig13,
    table6,
)
from repro.sim.cdn import CdnVantage

N_WEEKS = 24


@pytest.fixture(scope="module")
def vantage():
    return CdnVantage(rng=0, n_weeks=N_WEEKS)


class TestTrendRatio:
    def test_constant_series_is_one(self):
        assert _trend_ratio(np.ones(16)) == 1.0

    def test_growing_series_above_one(self):
        assert _trend_ratio(np.arange(1.0, 25.0)) > 1.0

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            _trend_ratio(np.ones(15))

    def test_zero_early_window_is_inf(self):
        series = np.concatenate([np.zeros(8), np.ones(8)])
        assert _trend_ratio(series) == float("inf")


class TestFig1:
    def test_rows_consistent(self, vantage):
        result = fig1(vantage)
        assert np.array_equal(result.weeks, np.arange(N_WEEKS))
        for series in (result.sources_128, result.sources_64,
                       result.sources_48):
            assert len(series) == N_WEEKS
            assert np.all(series >= 0)
        # aggregation hierarchy: /64 sources are at least /48 sources.
        assert np.all(result.sources_64 >= result.sources_48)

    def test_growth_factors(self, vantage):
        result = fig1(vantage)
        for growth in (result.growth_128, result.growth_64,
                       result.growth_48):
            assert math.isfinite(growth) and growth > 0

    def test_render(self, vantage):
        out = fig1(vantage).render()
        assert out.startswith("Fig 1")
        assert "growth factors" in out


class TestFig2:
    def test_rows_consistent(self, vantage):
        result = fig2(vantage)
        assert len(result.total) == len(result.top_source) == N_WEEKS
        assert np.all(result.top_source <= result.total)
        assert np.all(result.total >= 0)

    def test_shares_are_fractions(self, vantage):
        result = fig2(vantage)
        assert 0.0 < result.early_top_share <= 1.0
        assert 0.0 < result.late_top_share <= 1.0
        # the paper's de-concentration: the top source loses share.
        assert result.late_top_share < result.early_top_share

    def test_growth_and_render(self, vantage):
        result = fig2(vantage)
        assert math.isfinite(result.growth) and result.growth > 1.0
        assert "Fig 2" in result.render()


class TestFig13:
    def test_rows_consistent(self, vantage):
        result = fig13(vantage)
        assert np.array_equal(result.weeks, np.arange(N_WEEKS))
        assert len(result.ases) == N_WEEKS
        # weekly AS counts never exceed the modeled population.
        assert np.all(result.ases <= len(vantage.specs))

    def test_growth_and_render(self, vantage):
        result = fig13(vantage)
        assert math.isfinite(result.growth) and result.growth > 0
        assert result.render().startswith("Fig 13")


class TestTable6:
    def test_rows_consistent(self, vantage):
        rows = table6(vantage, n=10).rows
        assert 0 < len(rows) <= 10
        packets = [row["packets"] for row in rows]
        shares = [row["share"] for row in rows]
        assert packets == sorted(packets, reverse=True)
        assert shares == sorted(shares, reverse=True)
        assert 0.0 < sum(shares) <= 1.0
        for row in rows:
            assert row["share"] == pytest.approx(
                row["packets"] * shares[0] / packets[0])
            assert row["n_64"] >= row["n_48"] >= 1
            assert row["n_128"] >= 1
            assert row["as_type"] and row["country"]

    def test_render(self, vantage):
        out = table6(vantage, n=5).render()
        assert out.startswith("Table 6")
        assert out.count("#") == 5

    def test_default_vantage_path(self):
        """Drivers build their own 104-week vantage when none is passed."""
        result = fig13(seed=1)
        assert len(result.ases) == 104
