"""Tests for the experiment drivers (shapes asserted against the paper)."""

import numpy as np
import pytest

from repro.core.features import Feature
from repro.datasets.asdb import AsCategory
from repro.experiments import (
    EXPERIMENTS,
    fig1,
    fig2,
    fig5,
    fig6,
    fig9,
    fig10,
    fig11,
    fig13,
    fig14,
    groundtruth,
    s51_overlap,
    s531_retraction,
    table1,
    table2,
    table3,
    table5,
    table6,
    table7,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 22
        for key, (fn, needs_result) in EXPERIMENTS.items():
            assert callable(fn)


class TestConfigExperiments:
    def test_table2(self):
        result = table2()
        assert result.count == 27
        assert "H_TPot1" in result.render()
        assert result.by_name("H_UDP").udp_ports == (53, 123)
        with pytest.raises(KeyError):
            result.by_name("nope")

    def test_table5(self):
        result = table5()
        assert "cowrie" in result.tpot1_ports
        assert "cowrie" not in result.tpot2_ports
        assert "elasticpot" in result.tpot2_ports
        assert "dionaea" in result.tpot1_ports
        assert "snare" in result.render()

    def test_table7_matches_paper(self):
        result = table7()
        i = result.interactions
        assert i["ICMPv6 echo request"] == "ICMPv6 Echo reply"
        assert "SYN" in i["TCP SYN to open port"] or "18" in i["TCP SYN to open port"]
        assert i["any DNS query (UDP/53)"] == "DNS SERVFAIL"
        assert i["any NTP client packet (UDP/123)"] == "NTP kiss-of-death (DENY)"
        assert i["TCP SYN to closed port"] == "(silence)"
        assert i["ICMPv6 echo to dark address"] == "(silence)"


class TestCdnExperiments:
    def test_fig1_growth(self):
        result = fig1(seed=0)
        assert result.growth_128 > 1.5
        assert result.growth_64 > 1.5
        assert result.growth_48 > 1.5
        assert "growth" in result.render()

    def test_fig2_growth_and_dispersion(self):
        result = fig2(seed=0)
        assert result.growth > 10
        assert result.early_top_share > result.late_top_share

    def test_fig13_as_growth(self):
        result = fig13(seed=0)
        assert result.growth > 2
        assert len(result.ases) == 104

    def test_table6_rows(self):
        result = table6(seed=0)
        assert len(result.rows) == 20
        assert result.rows[0]["share"] > result.rows[-1]["share"]
        assert "#1" in result.render()


class TestScenarioExperiments:
    def test_table1_shape(self, small_result):
        result = table1(small_result)
        nta = result.row("NT-A")
        ntb = result.row("NT-B")
        ntc = result.row("NT-C")
        assert nta.packets > ntc.packets > ntb.packets
        assert nta.sources_128 >= nta.sources_64 >= nta.sources_48
        assert nta.source_asns > ntc.source_asns >= ntb.source_asns
        assert "NT-A" in result.render()

    def test_s51_overlap(self, small_result):
        result = s51_overlap(small_result)
        assert 0.0 < result.average_jaccard < 0.4
        assert result.max_jaccard <= 0.5
        # Overlapping /64 sources carry the bulk of NT-C's traffic.
        assert result.reports["A-C"].shared_traffic_share_b > 0.5
        assert "Jaccard" in result.render()

    def test_table3_top2_dominate(self, small_result):
        result = table3(small_result)
        names = [r.name for r in result.rows[:2]]
        assert set(names) == {"AMAZON-02", "CNGI-CERNET"}
        assert result.top2_share > 0.5
        amazon = next(r for r in result.rows if r.name == "AMAZON-02")
        cernet = next(r for r in result.rows if r.name == "CNGI-CERNET")
        # Table 3's contrast: similar volume, wildly different source counts.
        assert amazon.unique_128 > 50 * cernet.unique_128 / 46
        assert "top-2 share" in result.render()

    def test_fig5_shapes(self, small_result):
        result = fig5(small_result)
        assert result.icmp_share > 0.7
        scanners = result.category(AsCategory.INTERNET_SCANNER)
        assert scanners.dominant_protocol == "tcp"
        re_stats = result.category(AsCategory.RESEARCH_EDUCATION)
        cloud = result.category(AsCategory.HOSTING_CLOUD)
        assert re_stats.unique_destinations_128 > cloud.unique_destinations_128
        # Scanner ASes hold far more unique sources per packet than clouds.
        assert scanners.unique_sources_128 > 0

    def test_fig6_germany_leads(self, small_result):
        result = fig6(small_result)
        assert result.top_country == "DE"
        assert "DE" in result.render()

    def test_fig9_scope(self, small_result):
        result = fig9(small_result)
        assert result.frac_2 > 0.6
        assert result.frac_27 > 0.99
        assert result.report.honeyprefix_traffic_share > 0.9
        assert "honeyprefix traffic share" in result.render()

    def test_fig10_bimodal_no_length_correlation(self, small_result):
        result = fig10(small_result)
        assert len(result.packets) == 16
        assert result.length_correlation < 0.6
        assert "/49" in result.render()

    def test_fig11_tactics(self, small_result):
        result = fig11(small_result)
        assert "H_TPot1" in result.reports
        # The subdomain/TLS coupling finding (paper's D arrow).
        assert result.subdomain_tls_coupling_holds()
        # Hitlist-driven sources hit the TPots.
        assert result.sources_using("H_TPot1", "H") > 0
        assert "tactic combinations" in result.render()

    def test_fig14_upper_half(self, small_result):
        result = fig14(small_result)
        assert result.upper_half_fraction == 1.0
        assert result.grid.shape == (256, 256)
        assert result.grid.sum() > 0
        assert len(result.honeyprefix_cells) == 27

    def test_s531_retraction(self, small_result):
        result = s531_retraction(small_result)
        assert result.suppression > 0.8
        assert "suppressed" in result.render()

    def test_groundtruth_scores(self, small_result):
        result = groundtruth(small_result)
        assert set(result.scores) == {"NT-A", "NT-B", "NT-C"}
        assert result.truth_rows["NT-A"] > 0
        nta = result.scores["NT-A"]
        assert set(nta) == {128, 64, 48}
        assert [nta[n].source_length for n in (128, 64, 48)] == [128, 64, 48]
        # Aggregating sources reunites rotating scanners: /64 recall must
        # be at least as good as per-address /128 recall (the paper's
        # motivation for source aggregation).
        assert nta[64].recall >= nta[128].recall
        assert all(0.0 <= nta[n].precision <= 1.0 for n in nta)
        assert "Ground truth" in result.render()
