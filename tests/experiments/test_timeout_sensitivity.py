"""Tests for the footnote-1 timeout-sensitivity experiment."""

import pytest

from repro.analysis.records import PacketRecords
from repro.experiments.timeout_sensitivity import (
    TIMEOUTS,
    footnote1_timeout_sensitivity,
)
from repro.net.addr import IPv6Prefix
from repro.net.packet import icmp_echo_request

SRC = IPv6Prefix.parse("2620:1::/48").network | 1


def _spaced_pings(gap: float, n: int = 240):
    """One source probing n distinct targets with a fixed gap."""
    return PacketRecords.from_packets([
        icmp_echo_request(i * gap, SRC, (1 << 80) + i) for i in range(n)
    ])


class TestRawMode:
    def test_dense_traffic_is_insensitive(self):
        records = _spaced_pings(gap=10.0)
        result = footnote1_timeout_sensitivity(records, min_targets=100)
        assert not result.density_corrected
        assert result.scan_counts == (1, 1, 1)
        assert result.relative_drop(1) == 0.0

    def test_sparse_traffic_fragments(self):
        # Gaps of 1200 s: sessions survive 1800/3600 but shatter at 900.
        records = _spaced_pings(gap=1200.0)
        result = footnote1_timeout_sensitivity(records, min_targets=100)
        assert result.scan_counts[0] == 1
        assert result.scan_counts[1] == 1
        assert result.source_counts[2] == 0  # fragments below 100 targets

    def test_empty_records(self):
        result = footnote1_timeout_sensitivity(PacketRecords.empty())
        assert result.scan_counts == (0, 0, 0)
        assert result.relative_drop(2) == 0.0


class TestDensityCorrection:
    def test_scenario_default_corrects(self, small_result):
        result = footnote1_timeout_sensitivity(small_result,
                                               min_targets=50)
        assert result.density_corrected
        factor = 1.0 / small_result.config.volume_scale
        assert result.effective_timeouts == tuple(
            t * factor for t in TIMEOUTS
        )
        # At corrected density, the paper's claim: marginal differences.
        assert result.relative_drop(1) < 0.1
        assert result.relative_drop(2) < 0.1

    def test_scenario_raw_mode_available(self, small_result):
        result = footnote1_timeout_sensitivity(
            small_result, min_targets=50, density_corrected=False,
        )
        assert result.effective_timeouts == TIMEOUTS

    def test_render_mentions_mode(self, small_result):
        corrected = footnote1_timeout_sensitivity(small_result,
                                                  min_targets=50)
        assert "density-corrected" in corrected.render()
