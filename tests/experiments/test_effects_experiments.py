"""Tests for the Table 4 / Fig 7 / Fig 8 effect experiments.

These are the statistically heavy experiments, so they share the small
scenario fixture and module-scoped computation.
"""

import numpy as np
import pytest

from repro.experiments.effects import fig7, fig8, table4


@pytest.fixture(scope="module")
def table4_result(small_result):
    return table4(small_result)


@pytest.fixture(scope="module")
def fig7_result(small_result):
    return fig7(small_result)


class TestTable4:
    def test_all_announced_prefixes_estimated(self, table4_result):
        names = set(table4_result.traffic)
        assert "H_TPot1" in names and "H_UDP" in names
        assert "H_TCP" not in names  # announcement never propagated

    def test_effects_positive_and_significant(self, table4_result):
        for name, est in table4_result.traffic.items():
            assert est.aes > 0, name
            assert est.significant, name

    def test_asn_effects_positive(self, table4_result):
        for name, est in table4_result.asn.items():
            assert est.aes > 0, name

    def test_domain_prefixes_attract_most_asns(self, table4_result):
        """Paper: H_Org/net had the largest ASN diversity effect."""
        asn = {k: v.aes for k, v in table4_result.asn.items()}
        best = max(asn, key=asn.get)
        assert best in ("H_Org/net", "H_Combined", "H_Com", "H_TPot1")
        assert asn[best] > asn["H_BGP1"]

    def test_tpot_dominates_bgp_only(self, table4_result):
        assert (table4_result.traffic["H_TPot1"].aes
                > table4_result.traffic["H_BGP1"].aes)

    def test_hitlisted_udp_beats_plain_alias(self, table4_result):
        """Paper: the manually hitlisted H_UDP (112k/day) far exceeded the
        plain aliased prefix (10.7k/day)."""
        assert (table4_result.traffic["H_UDP"].aes
                > table4_result.traffic["H_Alias"].aes)

    def test_trigger_effects_present(self, table4_result):
        assert "TPot1+TLS" in table4_result.triggers
        assert table4_result.triggers["TPot1+TLS"].significant

    def test_tls_trigger_is_largest_effect(self, table4_result):
        """Paper: the TPot1 TLS trigger produced the largest effect size
        (224k packets/day)."""
        tls = table4_result.triggers["TPot1+TLS"].aes
        assert all(tls > est.aes for est in table4_result.traffic.values())

    def test_render(self, table4_result):
        text = table4_result.render()
        assert "Δtraffic" in text and "H_TPot1" in text


class TestFig7:
    def test_matrix_shape(self, fig7_result):
        assert fig7_result.matrix.shape[0] == len(fig7_result.names)

    def test_immediate_increase_after_announcement(self, fig7_result):
        """Scanner attention spikes right after the BGP announcement."""
        for i, name in enumerate(fig7_result.names):
            row = fig7_result.matrix[i]
            finite = row[np.isfinite(row)]
            early = finite[:10]
            assert np.max(early) > 0, name

    def test_trigger_jumps_positive(self, fig7_result):
        assert fig7_result.trigger_jumps.get("hitlist", 0) > 1.5
        assert fig7_result.trigger_jumps.get("tls", 0) > 1.5

    def test_render(self, fig7_result):
        assert "trigger" in fig7_result.render()


class TestFig8:
    def test_asn_stability_vs_traffic_decay(self, small_result):
        result = fig8(small_result, names=("H_Com", "H_Alias"))
        for name in result.names:
            # ASN counts stay comparatively stable...
            assert result.stability(name) > 0.3
        # ...while at least the non-trigger prefixes' traffic decays from
        # its initial burst.
        assert result.traffic_decay("H_Alias") < 1.5

    def test_series_lengths(self, small_result):
        result = fig8(small_result)
        for name in result.names:
            assert len(result.asn_series[name]) == len(
                result.traffic_series[name]
            )


class TestSeasonalEffects:
    def test_seasonal_counterfactual_still_detects(self, small_result):
        """Effect estimation with the weekly-seasonal model reaches the
        same qualitative conclusion on real scenario data."""
        from repro.analysis.effects import estimate_effect
        from repro.core.features import Feature

        control = small_result.control_records()
        hp = small_result.honeyprefixes["H_Org/net"]
        records = small_result.honeyprefix_records("H_Org/net")
        estimate = estimate_effect(
            "H_Org/net", records, control,
            hp.feature_time(Feature.BGP),
            small_result.start, small_result.end,
            seasonal_period=7,
        )
        assert estimate.significant
        assert estimate.aes > 0
