"""Tests for the BSTM / causal-impact estimator."""

import numpy as np
import pytest

from repro.analysis.bstm import (
    BstmModel,
    CausalImpact,
    fit_local_level,
    kalman_filter_local_level,
)


class TestKalman:
    def test_constant_series_converges(self):
        z = np.full(50, 10.0)
        result = kalman_filter_local_level(z, sigma_obs2=1.0,
                                           sigma_level2=0.01)
        assert result.level[-1] == pytest.approx(10.0, abs=0.1)
        assert result.level_var[-1] < result.level_var[0]

    def test_handles_missing_values(self):
        z = np.full(50, 10.0)
        z[10:20] = np.nan
        result = kalman_filter_local_level(z, 1.0, 0.01)
        assert np.isfinite(result.level).all()
        assert result.level[-1] == pytest.approx(10.0, abs=0.2)

    def test_tracks_level_shift(self):
        z = np.concatenate([np.full(30, 0.0), np.full(30, 100.0)])
        result = kalman_filter_local_level(z, 1.0, 10.0)
        assert result.level[-1] == pytest.approx(100.0, abs=5.0)

    def test_loglik_prefers_right_variances(self, rng):
        z = rng.normal(0, 1.0, 200)  # pure noise, no level drift
        good = kalman_filter_local_level(z, 1.0, 1e-6)
        bad = kalman_filter_local_level(z, 1e-6, 1.0)
        assert good.loglik > bad.loglik


class TestFit:
    def test_fit_recovers_noise_scale(self, rng):
        z = rng.normal(5.0, 2.0, 300)
        result = fit_local_level(z)
        assert 1.0 < np.sqrt(result.sigma_obs2) < 4.0

    def test_fit_requires_data(self):
        with pytest.raises(ValueError):
            fit_local_level(np.array([1.0, 2.0]))


class TestBstmModel:
    def test_regression_coefficient_recovered(self, rng):
        x = rng.normal(50, 10, (100, 1))
        y = 3.0 * x[:, 0] + 7.0 + rng.normal(0, 1, 100)
        model = BstmModel().fit(y, x)
        assert model.beta[0] == pytest.approx(3.0, abs=0.2)

    def test_control_free_model(self, rng):
        y = rng.normal(10, 1, 50)
        model = BstmModel().fit(y, np.empty((50, 0)))
        mean, var = model.predict(np.empty((5, 0)), horizon=5)
        assert mean.shape == (5,)
        assert np.all(var > 0)

    def test_predict_variance_grows(self, rng):
        x = rng.normal(50, 10, (100, 1))
        y = 2.0 * x[:, 0] + rng.normal(0, 1, 100)
        model = BstmModel().fit(y, x)
        _, var = model.predict(np.full((20, 1), 50.0))
        assert var[-1] > var[0]

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            BstmModel().predict(np.zeros((5, 1)))

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            BstmModel().fit(np.zeros(10), np.zeros((11, 2)))


class TestCausalImpact:
    def _data(self, rng, effect=100.0, n=120, idx=60):
        x = 50 + 10 * np.sin(np.arange(n) / 10) + rng.normal(0, 3, n)
        y = 2 * x + 20 + rng.normal(0, 5, n)
        y[idx:] += effect
        return y, x, idx

    def test_recovers_effect(self, rng):
        y, x, idx = self._data(rng)
        result = CausalImpact(rng=1).run(y, x, idx)
        assert result.average_effect == pytest.approx(100.0, abs=10.0)
        assert result.significant
        assert result.ci_low < 100.0 < result.ci_high

    def test_null_effect_not_significant(self, rng):
        y, x, idx = self._data(rng, effect=0.0)
        result = CausalImpact(rng=2).run(y, x, idx)
        assert not result.significant
        assert abs(result.average_effect) < 10.0

    def test_negative_effect(self, rng):
        y, x, idx = self._data(rng, effect=-80.0)
        result = CausalImpact(rng=3).run(y, x, idx)
        assert result.significant
        assert result.average_effect == pytest.approx(-80.0, abs=12.0)

    def test_pointwise_shape(self, rng):
        y, x, idx = self._data(rng)
        result = CausalImpact(rng=4).run(y, x, idx)
        assert len(result.pointwise) == len(y) - idx
        assert len(result.counterfactual) == len(y) - idx

    def test_relative_effect(self, rng):
        y, x, idx = self._data(rng)
        result = CausalImpact(rng=5).run(y, x, idx)
        assert result.relative_effect > 0.5

    def test_rejects_bad_intervention_index(self, rng):
        y, x, _ = self._data(rng)
        with pytest.raises(ValueError):
            CausalImpact().run(y, x, 2)
        with pytest.raises(ValueError):
            CausalImpact().run(y, x, len(y))

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            CausalImpact(alpha=0.0)

    def test_multi_control(self, rng):
        n, idx = 100, 50
        x = rng.normal(50, 5, (n, 3))
        y = x @ np.array([1.0, 2.0, -1.0]) + rng.normal(0, 2, n)
        y[idx:] += 50
        result = CausalImpact(rng=6).run(y, x, idx)
        assert result.average_effect == pytest.approx(50.0, abs=8.0)


class TestSeasonalBstm:
    def _weekly_data(self, rng, n=140, effect=0.0, idx=100):
        weekly = 20 * np.sin(2 * np.pi * np.arange(n) / 7)
        x = 50 + rng.normal(0, 3, n)
        y = 2 * x + weekly + rng.normal(0, 2, n)
        y[idx:] += effect
        return y, x, idx

    def test_seasonal_model_beats_plain_on_weekly_data(self, rng):
        from repro.analysis.bstm import BstmModel, SeasonalBstmModel

        y, x, idx = self._weekly_data(rng)
        plain = BstmModel().fit(y[:idx], x[:idx, None])
        seasonal = SeasonalBstmModel(period=7).fit(y[:idx], x[:idx, None])
        mp, _ = plain.predict(x[idx:, None])
        ms, _ = seasonal.predict(x[idx:, None])
        rmse_plain = float(np.sqrt(np.mean((mp - y[idx:]) ** 2)))
        rmse_seasonal = float(np.sqrt(np.mean((ms - y[idx:]) ** 2)))
        assert rmse_seasonal < rmse_plain * 0.6

    def test_causal_impact_with_seasonality(self, rng):
        y, x, idx = self._weekly_data(rng, effect=60.0)
        result = CausalImpact(rng=7, seasonal_period=7).run(y, x, idx)
        assert result.significant
        assert result.average_effect == pytest.approx(60.0, abs=10.0)

    def test_seasonal_null_not_significant(self, rng):
        y, x, idx = self._weekly_data(rng, effect=0.0)
        result = CausalImpact(rng=8, seasonal_period=7).run(y, x, idx)
        assert abs(result.average_effect) < 12.0

    def test_fit_requires_enough_data(self):
        from repro.analysis.bstm import fit_seasonal

        with pytest.raises(ValueError):
            fit_seasonal(np.ones(5), period=7)

    def test_filter_rejects_bad_period(self):
        from repro.analysis.bstm import kalman_filter_seasonal

        with pytest.raises(ValueError):
            kalman_filter_seasonal(np.ones(10), 1.0, 1.0, 1.0, period=1)

    def test_handles_missing_values(self):
        from repro.analysis.bstm import kalman_filter_seasonal

        z = np.sin(2 * np.pi * np.arange(50) / 7) * 10
        z[10:15] = np.nan
        result = kalman_filter_seasonal(z, 1.0, 0.01, 0.01)
        assert np.isfinite(result.fitted_level).all()

    def test_predict_requires_fit(self):
        from repro.analysis.bstm import SeasonalBstmModel

        with pytest.raises(RuntimeError):
            SeasonalBstmModel().predict(np.zeros((5, 1)))


class TestBatchedBootstrap:
    """The vectorized bootstrap is the scalar reference, exactly."""

    def _inputs(self):
        rng = np.random.default_rng(21)
        pointwise = rng.normal(3.0, 2.0, size=41)
        cf_sd = np.abs(rng.normal(1.0, 0.4, size=41))
        return pointwise, cf_sd

    def test_matches_reference_bitwise(self):
        pointwise, cf_sd = self._inputs()
        estimator = CausalImpact(rng=0, n_resamples=400)
        batched = estimator.bootstrap_draws(
            pointwise, cf_sd, np.random.default_rng(77))
        reference = estimator.bootstrap_draws_reference(
            pointwise, cf_sd, np.random.default_rng(77))
        assert np.array_equal(batched, reference)

    def test_consumes_identical_stream(self):
        """Both paths leave the generator in the same state, so results
        downstream of the bootstrap cannot depend on which path ran."""
        pointwise, cf_sd = self._inputs()
        estimator = CausalImpact(rng=0, n_resamples=100)
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        estimator.bootstrap_draws(pointwise, cf_sd, rng_a)
        estimator.bootstrap_draws_reference(pointwise, cf_sd, rng_b)
        assert rng_a.integers(1 << 40) == rng_b.integers(1 << 40)

    def test_single_post_day(self):
        estimator = CausalImpact(rng=0, n_resamples=50)
        draws = estimator.bootstrap_draws(
            np.array([2.5]), np.array([0.1]), np.random.default_rng(1))
        assert draws.shape == (50,)
        assert np.all(np.isfinite(draws))
