"""Tests for blocklist recommendations."""

import pytest

from repro.analysis.blocklist import (
    _covering_prefixes,
    recommend_blocklist,
    render_blocklist,
)
from repro.analysis.asinfo import MetadataJoiner
from repro.analysis.records import PacketRecords
from repro.datasets.asdb import AsCategory, AsDatabase, AsRecord
from repro.datasets.geodb import GeoDatabase
from repro.datasets.prefix2as import Prefix2As
from repro.net.addr import IPv6Prefix
from repro.net.packet import icmp_echo_request

STABLE_PREFIX = IPv6Prefix.parse("2620:1::/32")
ROTATING_PREFIX = IPv6Prefix.parse("2a0e:5c00::/30")


@pytest.fixture
def joiner():
    p2a = Prefix2As()
    p2a.add(STABLE_PREFIX, 111)
    p2a.add(ROTATING_PREFIX, 222)
    db = AsDatabase(misclassification_rate=0.0)
    db.register(AsRecord(111, "STABLE", AsCategory.HOSTING_CLOUD, "US"))
    db.register(AsRecord(222, "ROTATOR", AsCategory.INTERNET_SCANNER, "DE"))
    return MetadataJoiner(p2a, db, GeoDatabase())


def _records(rng):
    pkts = []
    # Stable scanner: one address, many packets.
    stable = STABLE_PREFIX.network | 7
    pkts += [icmp_echo_request(float(i), stable, i) for i in range(50)]
    # Rotator: a fresh address per packet across the /30.
    for i in range(50):
        src = ROTATING_PREFIX.random_address(rng).value
        pkts.append(icmp_echo_request(100.0 + i, src, i))
    return PacketRecords.from_packets(pkts)


class TestCoveringPrefixes:
    def test_single_source(self):
        (prefix,) = _covering_prefixes([42], max_entries=16)
        assert prefix.length == 128 and prefix.network == 42

    def test_spread_forces_coarser(self):
        sources = [i << 64 for i in range(100)]  # 100 distinct /64s
        prefixes = _covering_prefixes(sources, max_entries=16)
        assert prefixes[0].length < 64
        assert all(any(s in p for p in prefixes) for s in sources)

    def test_clustered_stays_narrow(self):
        base = STABLE_PREFIX.network
        sources = [base | i for i in range(10)]
        prefixes = _covering_prefixes(sources, max_entries=16)
        assert prefixes[0].length == 128
        assert len(prefixes) == 10


class TestRecommend:
    def test_granularity_tracks_rotation(self, joiner, rng):
        records = _records(rng)
        entries = {e.as_name: e
                   for e in recommend_blocklist(records, joiner)}
        assert entries["STABLE"].granularity == 128
        assert entries["STABLE"].overreach_bits == 0.0
        assert entries["ROTATOR"].granularity < 64
        assert entries["ROTATOR"].overreach_bits > 16

    def test_min_packets_filter(self, joiner, rng):
        records = _records(rng)
        assert recommend_blocklist(records, joiner, min_packets=60) == []

    def test_sorted_by_volume(self, joiner, rng):
        entries = recommend_blocklist(_records(rng), joiner)
        packets = [e.packets for e in entries]
        assert packets == sorted(packets, reverse=True)

    def test_empty(self, joiner):
        assert recommend_blocklist(PacketRecords.empty(), joiner) == []

    def test_render(self, joiner, rng):
        text = render_blocklist(recommend_blocklist(_records(rng), joiner))
        assert "STABLE" in text and "ROTATOR" in text
        assert "HIGH" in text or "medium" in text
