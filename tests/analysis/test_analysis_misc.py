"""Tests for jaccard, asinfo, effects helpers, scope, tactics, hilbert."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import DAY
from repro.analysis.asinfo import MetadataJoiner
from repro.analysis.effects import convergence_day, daily_series
from repro.analysis.hilbert import (
    hilbert_d2xy,
    hilbert_map,
    hilbert_xy2d,
    prefix_cells,
)
from repro.analysis.jaccard import (
    jaccard_matrix,
    jaccard_similarity,
    overlap_report,
)
from repro.analysis.records import PacketRecords
from repro.analysis.scope import scanner_scope
from repro.analysis.tactics import label_tactics
from repro.core.features import Feature
from repro.core.honeyprefix import HoneyprefixConfig, IcmpMode, deploy_addresses
from repro.datasets.asdb import AsCategory, AsDatabase, AsRecord
from repro.datasets.geodb import GeoDatabase
from repro.datasets.prefix2as import Prefix2As
from repro.net.addr import IPv6Prefix
from repro.net.packet import (
    TCP,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)

COVERING = IPv6Prefix.parse("2001:db8::/32")
HONEY = COVERING.subnet_at(0x8001, 48)
SRC_A = IPv6Prefix.parse("2620:1::/32").network | 1
SRC_B = IPv6Prefix.parse("2620:2::/32").network | 1


class TestJaccard:
    def test_similarity_basics(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard_similarity(set(), set()) == 0.0
        assert jaccard_similarity({1}, {1}) == 1.0

    def test_overlap_report_shares(self):
        a = PacketRecords.from_packets(
            [icmp_echo_request(1.0, SRC_A, 9)] * 9
            + [icmp_echo_request(2.0, SRC_B, 8)]
        )
        b = PacketRecords.from_packets([icmp_echo_request(1.0, SRC_A, 7)])
        rep = overlap_report("A", a, "B", b, 64)
        assert rep.jaccard == pytest.approx(0.5)
        assert rep.shared_traffic_share_a == pytest.approx(0.9)
        assert rep.shared_traffic_share_b == 1.0

    def test_matrix_levels(self):
        a = PacketRecords.from_packets([icmp_echo_request(1.0, SRC_A, 9)])
        b = PacketRecords.from_packets([icmp_echo_request(1.0, SRC_A, 7)])
        matrix = jaccard_matrix({"A": a, "B": b})
        assert matrix[("A", "B", 128)] == 1.0
        assert len(matrix) == 3


class TestMetadataJoiner:
    @pytest.fixture
    def joiner(self):
        p2a = Prefix2As()
        p2a.add(IPv6Prefix.parse("2620:1::/32"), 111)
        p2a.add(IPv6Prefix.parse("2620:2::/32"), 222)
        db = AsDatabase(misclassification_rate=0.0)
        db.register(AsRecord(111, "AS-A", AsCategory.HOSTING_CLOUD, "US"))
        db.register(AsRecord(222, "AS-B", AsCategory.INTERNET_SCANNER, "DE"))
        geo = GeoDatabase()
        geo.add(IPv6Prefix.parse("2620:1::/32"), "US")
        geo.add(IPv6Prefix.parse("2620:2::/32"), "DE")
        return MetadataJoiner(p2a, db, geo)

    @pytest.fixture
    def records(self):
        return PacketRecords.from_packets(
            [icmp_echo_request(float(i), SRC_A, i) for i in range(8)]
            + [tcp_segment(9.0, SRC_B, 99, 4000, 443, TcpFlags.SYN)]
        )

    def test_top_asns(self, joiner, records):
        rows = joiner.top_asns(records, n=2)
        assert rows[0].asn == 111
        assert rows[0].packets == 8
        assert rows[0].share == pytest.approx(8 / 9)
        assert rows[1].name == "AS-B"

    def test_category_breakdown(self, joiner, records):
        cats = joiner.category_breakdown(records)
        cloud = cats[AsCategory.HOSTING_CLOUD]
        assert cloud.packets == 8
        assert cloud.dominant_protocol == "icmpv6"
        scanner = cats[AsCategory.INTERNET_SCANNER]
        assert scanner.dominant_protocol == "tcp"
        assert scanner.unique_sources_128 == 1

    def test_country_breakdown(self, joiner, records):
        countries = joiner.country_breakdown(records)
        assert countries == {"US": 1, "DE": 1}

    def test_full_breakdown(self, joiner, records):
        breakdown = joiner.breakdown(records)
        assert breakdown.total_packets == 9
        assert breakdown.total_asns == 2
        assert breakdown.protocol_shares["icmpv6"] == pytest.approx(8 / 9)

    def test_unmapped_source_gets_zero(self, joiner):
        records = PacketRecords.from_packets([icmp_echo_request(0.0, 5, 9)])
        assert joiner.row_asns(records).tolist() == [0]


class TestEffectsHelpers:
    def test_daily_series_asns_requires_joiner(self):
        with pytest.raises(ValueError):
            daily_series(PacketRecords.empty(), 0, DAY, "asns")

    def test_daily_series_unknown_metric(self):
        with pytest.raises(ValueError):
            daily_series(PacketRecords.empty(), 0, DAY, "bogus")

    def test_convergence_day(self):
        series = np.concatenate([np.array([100.0, 80, 60, 40, 20]),
                                 np.full(20, 5.0)])
        day = convergence_day(series, window=5, threshold_fraction=0.25)
        assert day is not None and 3 <= day <= 6

    def test_convergence_never(self):
        series = np.full(30, 100.0)
        assert convergence_day(series) is None

    def test_convergence_short_series(self):
        assert convergence_day(np.array([1.0])) is None


class TestScope:
    def test_scope_counts(self):
        hp2 = COVERING.subnet_at(0x8002, 48)
        pkts = (
            [icmp_echo_request(1.0, SRC_A, HONEY.network | 1)]
            + [icmp_echo_request(2.0, SRC_A, hp2.network | 1)]
            + [icmp_echo_request(3.0, SRC_B, HONEY.network | 2)]
            + [icmp_echo_request(4.0, SRC_B, COVERING.subnet_at(3, 48).network | 1)]
        )
        records = PacketRecords.from_packets(pkts)
        report = scanner_scope(records, COVERING, [HONEY, hp2])
        assert report.fraction_at_most(2) == 1.0
        assert report.honeyprefix_traffic_share == pytest.approx(0.75)
        assert report.low_prefix_share_of_other == 1.0
        assert report.wide_scanners == 0

    def test_empty_records(self):
        report = scanner_scope(PacketRecords.empty(), COVERING, [])
        assert report.honeyprefix_traffic_share == 0.0

    def test_cdf(self):
        records = PacketRecords.from_packets(
            [icmp_echo_request(1.0, SRC_A, HONEY.network | 1)]
        )
        report = scanner_scope(records, COVERING, [HONEY])
        x, f = report.cdf()
        assert x.tolist() == [1] and f.tolist() == [1.0]


class TestTactics:
    @pytest.fixture
    def honeypot(self, rng):
        config = HoneyprefixConfig(
            name="H_X", icmp_mode=IcmpMode.ADDRESSES, udp_ports=(53,),
        )
        hp = deploy_addresses(config, HONEY, rng)
        hp.record(0.0, Feature.BGP)
        hp.domain_targets["bait.com"] = HONEY.network | 0xD0
        hp.manual_hitlist_addresses.append(HONEY.network | 0x111)
        hp.record(100.0, Feature.DOMAIN)
        hp.record(500.0, Feature.TLS_ROOT)
        hp.record(300.0, Feature.HITLIST)
        return hp

    def test_icmp_vs_other(self, honeypot):
        records = PacketRecords.from_packets([
            icmp_echo_request(10.0, SRC_A, HONEY.network | 1),
            icmp_echo_request(11.0, SRC_A, HONEY.network | 0xFFFF),
        ])
        report = label_tactics(records, honeypot)
        assert report.combos == {"IO": 1}

    def test_domain_vs_tls_by_time(self, honeypot):
        records = PacketRecords.from_packets([
            tcp_segment(200.0, SRC_A, HONEY.network | 0xD0, 1, 80,
                        TcpFlags.SYN),
            tcp_segment(600.0, SRC_B, HONEY.network | 0xD0, 1, 443,
                        TcpFlags.SYN),
        ])
        report = label_tactics(records, honeypot)
        assert report.combos["D"] == 1   # pre-TLS: zone file
        assert report.combos["d"] == 1   # post-TLS: CT log

    def test_hitlist_attribution(self, honeypot):
        records = PacketRecords.from_packets([
            icmp_echo_request(400.0, SRC_A, HONEY.network | 0x111),
        ])
        report = label_tactics(records, honeypot)
        assert report.combos == {"H": 1}
        assert report.sources_using("H") == 1

    def test_udp_attribution(self, honeypot, rng):
        udp_addr = next(a for a, b in honeypot.responsive.items()
                        if any(p == 17 for p, _ in b))
        records = PacketRecords.from_packets([
            udp_datagram(10.0, SRC_A, udp_addr, 1, 53),
        ])
        report = label_tactics(records, honeypot)
        assert report.combos == {"U": 1}

    def test_source_aggregation(self, honeypot):
        base = IPv6Prefix.parse("2620:1::/48").network
        records = PacketRecords.from_packets([
            icmp_echo_request(10.0, base | 1, HONEY.network | 1),
            icmp_echo_request(11.0, base | 2, HONEY.network | 0xBAD),
        ])
        report = label_tactics(records, honeypot, source_length=48)
        assert report.total_sources == 1
        assert report.combos == {"IO": 1}


class TestHilbert:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_roundtrip_order8(self, d):
        x, y = hilbert_d2xy(8, d)
        assert hilbert_xy2d(8, x, y) == d

    def test_adjacent_distances_are_neighbors(self):
        for d in range(0, 1000):
            x1, y1 = hilbert_d2xy(8, d)
            x2, y2 = hilbert_d2xy(8, d + 1)
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_d2xy(8, 1 << 16)
        with pytest.raises(ValueError):
            hilbert_xy2d(8, 256, 0)

    def test_map_counts(self):
        records = PacketRecords.from_packets([
            icmp_echo_request(1.0, SRC_A, HONEY.network | 5),
            icmp_echo_request(2.0, SRC_A, HONEY.network | 6),
            icmp_echo_request(3.0, SRC_A, 42),  # outside: ignored
        ])
        grid = hilbert_map(records, COVERING)
        assert grid.shape == (256, 256)
        assert grid.sum() == 2.0

    def test_map_rejects_odd_bits(self):
        with pytest.raises(ValueError):
            hilbert_map(PacketRecords.empty(), COVERING, cell_length=47)

    def test_prefix_cells(self):
        cells = prefix_cells([HONEY], COVERING)
        assert len(cells) == 1
        x, y = cells[0]
        assert 0 <= x < 256 and 0 <= y < 256
        with pytest.raises(ValueError):
            prefix_cells([IPv6Prefix.parse("2002::/48")], COVERING)
