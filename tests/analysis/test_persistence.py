"""Tests for records persistence, conn.log export, and capture conversion."""

import numpy as np
import pytest

from repro.analysis.flows import aggregate_flows, write_conn_log
from repro.analysis.records import PacketRecords
from repro.net.packet import TcpFlags, icmp_echo_request, tcp_segment
from repro.net.pcapstore import PacketWriter
from repro.net.realpcap import convert_capture, read_pcap

SRC = 0x20010DB8 << 96 | 7
DST = 0x20010DB8 << 96 | 9


@pytest.fixture
def packets():
    return [
        icmp_echo_request(1.0, SRC, DST),
        tcp_segment(2.0, SRC, DST, 4000, 443, TcpFlags.SYN),
        tcp_segment(2.5, SRC, DST, 4000, 443, TcpFlags.ACK, seq=1),
    ]


class TestRecordsPersistence:
    def test_save_load_roundtrip(self, tmp_path, packets):
        records = PacketRecords.from_packets(packets)
        path = tmp_path / "records.npz"
        records.save(path)
        loaded = PacketRecords.load(path)
        assert len(loaded) == len(records)
        assert list(loaded.src_addresses()) == list(records.src_addresses())
        assert np.array_equal(loaded.ts, records.ts)
        assert np.array_equal(loaded.proto, records.proto)

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        PacketRecords.empty().save(path)
        assert len(PacketRecords.load(path)) == 0


class TestConnLog:
    def test_zeek_format(self, tmp_path, packets):
        flows = aggregate_flows(PacketRecords.from_packets(packets))
        path = tmp_path / "conn.log"
        assert write_conn_log(flows, path) == 2
        lines = path.read_text().splitlines()
        assert lines[0].startswith("#separator")
        assert lines[1].startswith("#fields\tts\tuid")
        columns = lines[2].split("\t")
        assert len(columns) == 9
        assert columns[2] == "2001:db8::7"
        assert columns[6] in ("icmp6", "tcp")

    def test_empty(self, tmp_path):
        path = tmp_path / "conn.log"
        assert write_conn_log([], path) == 0
        assert path.read_text().count("\n") == 2  # headers only


class TestCaptureConversion:
    def test_rpv6_to_pcap(self, tmp_path, packets):
        source = tmp_path / "capture.rpv6"
        with PacketWriter(source) as writer:
            writer.write_all(packets)
        destination = tmp_path / "capture.pcap"
        assert convert_capture(source, destination) == 3
        parsed = list(read_pcap(destination))
        assert len(parsed) == 3
        assert parsed[0].src == SRC
