"""Tests for records persistence, conn.log export, and capture conversion."""

import numpy as np
import pytest

from repro.analysis.flows import aggregate_flows, write_conn_log
from repro.analysis.groundtruth import GroundTruthRecords
from repro.analysis.records import PacketRecords
from repro.net.packet import TcpFlags, icmp_echo_request, tcp_segment
from repro.net.pcapstore import PacketWriter
from repro.net.realpcap import convert_capture, read_pcap

SRC = 0x20010DB8 << 96 | 7
DST = 0x20010DB8 << 96 | 9


@pytest.fixture
def packets():
    return [
        icmp_echo_request(1.0, SRC, DST),
        tcp_segment(2.0, SRC, DST, 4000, 443, TcpFlags.SYN),
        tcp_segment(2.5, SRC, DST, 4000, 443, TcpFlags.ACK, seq=1),
    ]


class TestRecordsPersistence:
    def test_save_load_roundtrip(self, tmp_path, packets):
        records = PacketRecords.from_packets(packets)
        path = tmp_path / "records.npz"
        records.save(path)
        loaded = PacketRecords.load(path)
        assert len(loaded) == len(records)
        assert list(loaded.src_addresses()) == list(records.src_addresses())
        assert np.array_equal(loaded.ts, records.ts)
        assert np.array_equal(loaded.proto, records.proto)

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        PacketRecords.empty().save(path)
        assert len(PacketRecords.load(path)) == 0

    def test_save_load_are_npz_aliases(self):
        assert PacketRecords.save is PacketRecords.save_npz
        assert PacketRecords.load.__func__ is PacketRecords.load_npz.__func__

    def test_hyper_specific_addresses_roundtrip(self, tmp_path):
        """Addresses whose discriminating bits sit below the /48 boundary
        (hyper-specific prefixes up to /64 and full interface ids) survive
        the uint64-pair columns exactly."""
        addresses = [
            (0x20010DB8 << 96) | (0xBEEF << 64) | (1 << 63),   # /49 bit set
            (0x20010DB8 << 96) | (0xBEEF << 64) | 0xDEADBEEF,  # low-64 bits
            (1 << 127) | ((1 << 64) - 1),                      # extremes
        ]
        packets = [icmp_echo_request(float(i), a, DST)
                   for i, a in enumerate(addresses)]
        path = tmp_path / "specific.npz"
        PacketRecords.from_packets(packets).save_npz(path)
        loaded = PacketRecords.load_npz(path)
        assert list(loaded.src_addresses()) == addresses


class TestGroundTruthPersistence:
    def _truth(self):
        return GroundTruthRecords.from_columns(
            ts=[1.0, 2.0], src_hi=[SRC >> 64] * 2, src_lo=[7, 8],
            dst_hi=[DST >> 64] * 2, dst_lo=[9, 9], origin=[3, -1],
        )

    def test_roundtrip_with_origin(self, tmp_path):
        path = tmp_path / "truth.npz"
        truth = self._truth()
        truth.save_npz(path)
        loaded = GroundTruthRecords.load_npz(path)
        assert np.array_equal(loaded.origin, truth.origin)
        assert np.array_equal(loaded.src_lo, truth.src_lo)
        assert loaded.origin.dtype == np.int32

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "truth-empty.npz"
        GroundTruthRecords.empty().save_npz(path)
        assert len(GroundTruthRecords.load_npz(path)) == 0

    def test_origin_absent_means_unknown_emitter(self, tmp_path):
        """An archive without the origin column (e.g. exported from plain
        packet records) loads with every row marked unknown (-1)."""
        truth = self._truth()
        path = tmp_path / "no-origin.npz"
        np.savez_compressed(
            path, ts=truth.ts, src_hi=truth.src_hi, src_lo=truth.src_lo,
            dst_hi=truth.dst_hi, dst_lo=truth.dst_lo,
        )
        loaded = GroundTruthRecords.load_npz(path)
        assert len(loaded) == 2
        assert np.array_equal(loaded.origin,
                              np.full(2, -1, dtype=np.int32))


class TestConnLog:
    def test_zeek_format(self, tmp_path, packets):
        flows = aggregate_flows(PacketRecords.from_packets(packets))
        path = tmp_path / "conn.log"
        assert write_conn_log(flows, path) == 2
        lines = path.read_text().splitlines()
        assert lines[0].startswith("#separator")
        assert lines[1].startswith("#fields\tts\tuid")
        columns = lines[2].split("\t")
        assert len(columns) == 9
        assert columns[2] == "2001:db8::7"
        assert columns[6] in ("icmp6", "tcp")

    def test_empty(self, tmp_path):
        path = tmp_path / "conn.log"
        assert write_conn_log([], path) == 0
        assert path.read_text().count("\n") == 2  # headers only


class TestCaptureConversion:
    def test_rpv6_to_pcap(self, tmp_path, packets):
        source = tmp_path / "capture.rpv6"
        with PacketWriter(source) as writer:
            writer.write_all(packets)
        destination = tmp_path / "capture.pcap"
        assert convert_capture(source, destination) == 3
        parsed = list(read_pcap(destination))
        assert len(parsed) == 3
        assert parsed[0].src == SRC
