"""Tests for flow aggregation and scan detection."""

import numpy as np
import pytest

from repro._util import DAY, HOUR, WEEK
from repro.analysis.flows import aggregate_flows
from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import (
    detect_scans,
    weekly_scan_packets,
    weekly_scan_sources,
)
from repro.net.packet import icmp_echo_request, tcp_segment, TcpFlags


def _ping_burst(src, n, start=0.0, gap=1.0, dst_base=1 << 80):
    return [icmp_echo_request(start + i * gap, src, dst_base + i)
            for i in range(n)]


class TestFlows:
    def test_same_tuple_one_flow(self):
        pkts = [tcp_segment(i * 1.0, 5, 9, 4000, 80, TcpFlags.ACK)
                for i in range(10)]
        flows = aggregate_flows(PacketRecords.from_packets(pkts))
        assert len(flows) == 1
        assert flows[0].packets == 10
        assert flows[0].duration == pytest.approx(9.0)

    def test_timeout_splits_flow(self):
        pkts = [tcp_segment(0.0, 5, 9, 4000, 80, TcpFlags.ACK),
                tcp_segment(120.0, 5, 9, 4000, 80, TcpFlags.ACK)]
        flows = aggregate_flows(PacketRecords.from_packets(pkts),
                                timeout=60.0)
        assert len(flows) == 2

    def test_different_tuples_different_flows(self):
        pkts = [tcp_segment(0.0, 5, 9, 4000, 80, TcpFlags.ACK),
                tcp_segment(0.1, 5, 9, 4001, 80, TcpFlags.ACK),
                icmp_echo_request(0.2, 5, 9)]
        flows = aggregate_flows(PacketRecords.from_packets(pkts))
        assert len(flows) == 3

    def test_empty(self):
        assert aggregate_flows(PacketRecords.empty()) == []

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            aggregate_flows(PacketRecords.empty(), timeout=0.0)

    def test_flows_sorted_by_start(self):
        pkts = [tcp_segment(5.0, 1, 9, 1, 80, TcpFlags.ACK),
                tcp_segment(1.0, 2, 9, 2, 80, TcpFlags.ACK)]
        flows = aggregate_flows(PacketRecords.from_packets(pkts))
        assert flows[0].first_seen <= flows[1].first_seen


class TestScanDetection:
    def test_scan_requires_min_targets(self):
        records = PacketRecords.from_packets(_ping_burst(7, 99))
        assert detect_scans(records, min_targets=100) == []
        records = PacketRecords.from_packets(_ping_burst(7, 100))
        events = detect_scans(records, min_targets=100)
        assert len(events) == 1
        assert events[0].unique_targets == 100

    def test_repeated_targets_not_counted(self):
        pkts = [icmp_echo_request(i * 1.0, 7, 42) for i in range(200)]
        assert detect_scans(PacketRecords.from_packets(pkts),
                            min_targets=100) == []

    def test_timeout_splits_sessions(self):
        pkts = (_ping_burst(7, 60, start=0.0)
                + _ping_burst(7, 60, start=2 * 3600.0, dst_base=2 << 80))
        events = detect_scans(PacketRecords.from_packets(pkts),
                              min_targets=50, timeout=3600.0)
        assert len(events) == 2

    def test_source_aggregation_catches_rotation(self):
        """A scanner rotating /128s within a /64 evades /128 detection but
        not /64 aggregation — the reason Figs 1/2 aggregate sources."""
        base = 0xABCD << 64
        pkts = [icmp_echo_request(i * 1.0, base + i, (1 << 80) + i)
                for i in range(120)]
        records = PacketRecords.from_packets(pkts)
        assert detect_scans(records, source_length=128,
                            min_targets=100) == []
        events = detect_scans(records, source_length=64, min_targets=100)
        assert len(events) == 1
        assert events[0].source == base

    def test_event_fields(self):
        records = PacketRecords.from_packets(_ping_burst(7, 100, gap=2.0))
        (event,) = detect_scans(records, min_targets=100)
        assert event.start == 0.0
        assert event.end == pytest.approx(198.0)
        assert event.packets == 100
        assert event.duration == pytest.approx(198.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            detect_scans(PacketRecords.empty(), min_targets=0)
        with pytest.raises(ValueError):
            detect_scans(PacketRecords.empty(), timeout=0.0)


class TestWeeklySeries:
    def test_weekly_scan_sources(self):
        pkts = (_ping_burst(7, 120, start=0.0)
                + _ping_burst(8, 120, start=WEEK + 100.0, dst_base=2 << 80))
        records = PacketRecords.from_packets(pkts)
        weekly = weekly_scan_sources(records, 0.0, 2 * WEEK)
        assert weekly.tolist() == [1.0, 1.0]

    def test_weekly_scan_packets_top_source(self):
        # Sources in distinct /64s so the default aggregation keeps them
        # apart (7 and 8 share ::/64 and would merge into one session).
        src_a, src_b = 7 << 64, 8 << 64
        pkts = (_ping_burst(src_a, 300, start=0.0)
                + _ping_burst(src_b, 120, start=HOUR, dst_base=2 << 80))
        records = PacketRecords.from_packets(pkts)
        totals, top = weekly_scan_packets(records, 0.0, WEEK)
        assert totals[0] == 420.0
        assert top[0] == 300.0

    def test_empty_window(self):
        assert weekly_scan_sources(PacketRecords.empty(), 0.0, 0.0).shape == (0,)

    def test_weekly_scan_packets_drops_events_outside_window(self):
        """Events starting outside [start, end) are dropped, not
        mis-bucketed into the first or last week."""
        src_a, src_b, src_c = 7 << 64, 8 << 64, 9 << 64
        pkts = (
            # Starts (and ends) before the window: must not count.
            _ping_burst(src_a, 120, start=0.0)
            # Inside the window: counts in week 0 of the window.
            + _ping_burst(src_b, 120, start=10 * WEEK + 100.0,
                          dst_base=2 << 80)
            # Starts after the window end: must not count.
            + _ping_burst(src_c, 120, start=12 * WEEK + 100.0,
                          dst_base=3 << 80)
        )
        records = PacketRecords.from_packets(pkts)
        totals, top = weekly_scan_packets(records, 10 * WEEK, 12 * WEEK)
        assert totals.tolist() == [120.0, 0.0]
        assert top.tolist() == [120.0, 0.0]

    def test_weekly_scan_packets_empty_window(self):
        totals, top = weekly_scan_packets(PacketRecords.empty(), 0.0, 0.0)
        assert totals.shape == (0,) and top.shape == (0,)
