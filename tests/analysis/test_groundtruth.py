"""Tests for ground-truth provenance and detection scoring.

The pinned-value tests build a tiny, fully hand-checkable scanner
population: three agents whose behavior separates the three aggregation
levels — a source-rotating agent invisible at /128, a single-address agent
visible everywhere, and a /48-cohabiting agent that merges at /48.
"""

import numpy as np
import pytest

from repro.analysis.groundtruth import (
    GroundTruthRecords,
    score_all_levels,
    score_detection,
    truth_events,
)
from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import detect_scans
from repro.net.batch import PacketBatch, UNKNOWN_ORIGIN

HI_A = 0x20010DB8_00000000  # 2001:db8:0:0::/64 — agent 0 (rotates /128s)
HI_B = 0x20010DB9_00000000  # 2001:db9::/64     — agent 1 (one address)
HI_C = 0x20010DB8_00000001  # 2001:db8:0:1::/64 — agent 2 (shares A's /48)
DST_HI = 0x2403E800_00000000


def _toy_population():
    """Three agents, one second between probes, all gaps << timeout.

    * agent 0: 300 probes from 100 rotating /128s (3 targets each) in HI_A;
    * agent 1: 150 probes from one address in HI_B;
    * agent 2: 120 probes from one address in HI_C (same /48 as HI_A).
    """
    rows = []  # (ts, src_hi, src_lo, dst_lo, origin)
    for i in range(300):
        rows.append((0.5 + i, HI_A, i // 3, i, 0))
    for i in range(150):
        rows.append((0.3 + i, HI_B, 1, 10_000 + i, 1))
    for i in range(120):
        rows.append((0.7 + i, HI_C, 1, 20_000 + i, 2))
    ts, src_hi, src_lo, dst_lo, origin = map(np.asarray, zip(*rows))
    records = PacketRecords.from_columns(
        ts=ts, src_hi=src_hi, src_lo=src_lo,
        dst_hi=np.full(len(ts), DST_HI, dtype=np.uint64), dst_lo=dst_lo,
        proto=np.full(len(ts), 6), sport=np.full(len(ts), 40_000),
        dport=np.full(len(ts), 443),
    )
    truth = GroundTruthRecords.from_columns(
        ts=ts, src_hi=src_hi, src_lo=src_lo,
        dst_hi=np.full(len(ts), DST_HI, dtype=np.uint64), dst_lo=dst_lo,
        origin=origin,
    )
    return records, truth


class TestTruthEvents:
    def test_pinned_truth_events(self):
        _, truth = _toy_population()
        events = truth_events(truth)
        assert [(e.agent, e.packets, e.unique_targets) for e in events] == [
            (1, 150, 150), (0, 300, 300), (2, 120, 120),
        ]
        by_agent = {e.agent: e for e in events}
        assert by_agent[0].start == pytest.approx(0.5)
        assert by_agent[0].end == pytest.approx(299.5)

    def test_min_targets_filters(self):
        _, truth = _toy_population()
        assert len(truth_events(truth, min_targets=200)) == 1  # agent 0 only

    def test_timeout_splits_sessions(self):
        truth = GroundTruthRecords.from_columns(
            ts=[0.0, 1.0, 5000.0, 5001.0],
            src_hi=[HI_A] * 4, src_lo=[1] * 4,
            dst_hi=[DST_HI] * 4, dst_lo=[1, 2, 3, 4],
            origin=[0] * 4,
        )
        events = truth_events(truth, min_targets=2, timeout=3600.0)
        assert [(e.start, e.end) for e in events] == [
            (0.0, 1.0), (5000.0, 5001.0),
        ]

    def test_unknown_origin_excluded(self):
        truth = GroundTruthRecords.from_columns(
            ts=[0.0, 1.0], src_hi=[HI_A] * 2, src_lo=[1] * 2,
            dst_hi=[DST_HI] * 2, dst_lo=[1, 2],
            origin=[UNKNOWN_ORIGIN] * 2,
        )
        assert truth_events(truth, min_targets=1) == []
        assert truth.agents().size == 0


class TestPinnedScores:
    """Exact precision/recall at /128, /64, /48 on the toy population."""

    @pytest.fixture(scope="class")
    def scores(self):
        records, truth = _toy_population()
        return score_all_levels(records, truth)

    def test_slash128(self, scores):
        s = scores[128]
        # Agent 0's rotation defeats per-address detection: only agents 1
        # and 2 are found, both pure, so recall loses exactly agent 0.
        assert s.n_events == 2
        assert s.n_truth_events == 3
        assert s.precision == pytest.approx(1.0)
        assert s.recall == pytest.approx(2 / 3)
        assert s.fragmentation == pytest.approx(1.0)
        assert s.merge_rate == pytest.approx(0.0)

    def test_slash64(self, scores):
        s = scores[64]
        # /64 aggregation reunites agent 0's rotating addresses.
        assert s.n_events == 3
        assert s.precision == pytest.approx(1.0)
        assert s.recall == pytest.approx(1.0)
        assert s.fragmentation == pytest.approx(1.0)
        assert s.merge_rate == pytest.approx(0.0)

    def test_slash48(self, scores):
        s = scores[48]
        # Agents 0 and 2 share a /48: their sessions merge into one impure
        # event, halving precision while recall stays perfect.
        assert s.n_events == 2
        assert s.precision == pytest.approx(0.5)
        assert s.recall == pytest.approx(1.0)
        assert s.merge_rate == pytest.approx(0.5)
        assert s.fragmentation == pytest.approx(1.0)

    def test_n_agents(self, scores):
        assert all(s.n_agents == 3 for s in scores.values())


class TestScoreDetectionEdges:
    def test_fragmentation_counts_split_events(self):
        """One agent scanning from two /64s at once: one truth event,
        two detected events at /64 — fragmentation 2."""
        rows = []
        for i in range(120):
            rows.append((0.5 + i, HI_A, 1, i, 7))
            rows.append((0.6 + i, HI_C, 1, 1000 + i, 7))
        ts, src_hi, src_lo, dst_lo, origin = map(np.asarray, zip(*rows))
        records = PacketRecords.from_columns(
            ts=ts, src_hi=src_hi, src_lo=src_lo,
            dst_hi=np.full(len(ts), DST_HI, dtype=np.uint64), dst_lo=dst_lo,
            proto=np.full(len(ts), 6), sport=np.full(len(ts), 1),
            dport=np.full(len(ts), 2),
        )
        truth = GroundTruthRecords.from_columns(
            ts=ts, src_hi=src_hi, src_lo=src_lo,
            dst_hi=np.full(len(ts), DST_HI, dtype=np.uint64), dst_lo=dst_lo,
            origin=origin,
        )
        events = detect_scans(records, source_length=64)
        assert len(events) == 2
        score = score_detection(events, truth)
        assert score.n_truth_events == 1
        assert score.recall == pytest.approx(1.0)
        assert score.fragmentation == pytest.approx(2.0)
        assert score.precision == pytest.approx(1.0)

    def test_empty_everything(self):
        score = score_detection([], GroundTruthRecords.empty(),
                                source_length=64)
        assert score.source_length == 64
        assert score.n_events == 0
        assert score.n_truth_events == 0
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_mixed_levels_rejected(self):
        records, truth = _toy_population()
        events = (detect_scans(records, source_length=64)
                  + detect_scans(records, source_length=48))
        with pytest.raises(ValueError, match="mix aggregation levels"):
            score_detection(events, truth)

    def test_explicit_level_must_match(self):
        records, truth = _toy_population()
        events = detect_scans(records, source_length=64)
        with pytest.raises(ValueError, match="aggregated at /64"):
            score_detection(events, truth, source_length=48)


class TestGroundTruthRecords:
    def test_from_batches_requires_origin(self):
        batch = PacketBatch.from_columns(
            [0.0], [HI_A], [1], [DST_HI], [1], [6], [1], [2],
        )
        with pytest.raises(ValueError, match="origin"):
            GroundTruthRecords.from_batches([batch])

    def test_from_batches_concat_order(self):
        b1 = PacketBatch.from_columns(
            [0.0], [HI_A], [1], [DST_HI], [1], [6], [1], [2],
        ).with_origin(3)
        b2 = PacketBatch.from_columns(
            [1.0], [HI_B], [1], [DST_HI], [2], [6], [1], [2],
        ).with_origin(4)
        truth = GroundTruthRecords.from_batches([b1, b2])
        assert len(truth) == 2
        assert truth.origin.tolist() == [3, 4]
        assert truth.agents().tolist() == [3, 4]

    def test_concat_and_empty(self):
        _, truth = _toy_population()
        combined = GroundTruthRecords.concat(
            [truth, GroundTruthRecords.empty()]
        )
        assert len(combined) == len(truth)
        assert len(GroundTruthRecords.concat([])) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="origin"):
            GroundTruthRecords.from_columns(
                [0.0], [HI_A], [1], [DST_HI], [1], [0, 1],
            )


class TestProvenanceBoundary:
    def test_capture_strips_origin_keeps_sidecar(self):
        from repro.core.capture import PacketCapturer

        capturer = PacketCapturer("t")
        batch = PacketBatch.from_columns(
            [0.0, 1.0], [HI_A] * 2, [1, 2], [DST_HI] * 2, [1, 2],
            [6] * 2, [1] * 2, [2] * 2,
        ).with_origin(9)
        capturer.capture_batch(batch)
        records = capturer.to_records()
        truth = capturer.to_truth()
        assert len(records) == 2 and len(truth) == 2
        assert truth.origin.tolist() == [9, 9]
        # Analysis-facing records carry no provenance column at all.
        assert not hasattr(records, "origin") or records.origin is None

    def test_unstamped_batches_produce_no_truth(self):
        from repro.core.capture import PacketCapturer

        capturer = PacketCapturer("t")
        capturer.capture_batch(PacketBatch.from_columns(
            [0.0], [HI_A], [1], [DST_HI], [1], [6], [1], [2],
        ))
        assert len(capturer.to_records()) == 1
        assert len(capturer.to_truth()) == 0

    def test_batch_origin_ops(self):
        batch = PacketBatch.from_columns(
            [0.0, 1.0], [HI_A] * 2, [1, 2], [DST_HI] * 2, [1, 2],
            [6] * 2, [1] * 2, [2] * 2,
        )
        stamped = batch.with_origin(5)
        assert stamped.origin.tolist() == [5, 5]
        assert stamped.drop_origin().origin is None
        assert batch.drop_origin() is batch
        sub = stamped.select(np.array([True, False]))
        assert sub.origin.tolist() == [5]
        mixed = PacketBatch.concat([stamped, batch])
        assert mixed.origin.tolist() == [5, 5, UNKNOWN_ORIGIN, UNKNOWN_ORIGIN]
