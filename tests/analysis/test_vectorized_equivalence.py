"""Randomized equivalence: vectorized analysis vs. reference loops.

The columnar hot paths (`detect_scans`, `aggregate_flows`, the §5.1
overlap shares, and the packed-key aggregation in `PacketRecords`) must be
byte-identical to the retained per-packet reference implementations, on
randomized workloads and on the boundary cases the vectorization could
plausibly get wrong: gaps exactly equal to the timeout, empty and
singleton groups, duplicate timestamps, and aggregation lengths on both
sides of the 64-bit packing threshold.
"""

import numpy as np
import pytest

from repro.analysis.flows import aggregate_flows, aggregate_flows_reference
from repro.analysis.jaccard import (
    _dest_share,
    _dest_share_reference,
    _traffic_share,
    _traffic_share_reference,
    overlap_report,
)
from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import detect_scans, detect_scans_reference
from repro.net.addr import aggregate
from repro.net.packet import TCP, UDP, Packet, icmp_echo_request

#: Lengths on both sides of the packed-uint64 threshold, plus the paper's
#: aggregation levels.
LENGTHS = (0, 32, 48, 64, 65, 100, 128)


def _random_records(rng, n, n_sources=12, n_dests=40, t_max=20_000.0,
                    quantize=None):
    """Records with clustered sources/destinations and random timestamps.

    ``quantize`` snaps timestamps to multiples of that value, forcing
    duplicate timestamps and gaps exactly equal to the timeout.
    """
    base_src = [(int(rng.integers(1 << 40)) << 88)
                | (int(rng.integers(1 << 30)) << 50)
                for _ in range(n_sources)]
    base_dst = [(int(rng.integers(1 << 60)) << 64)
                | int(rng.integers(1 << 62))
                for _ in range(n_dests)]
    pkts = []
    for _ in range(n):
        ts = float(rng.uniform(0, t_max))
        if quantize:
            ts = round(ts / quantize) * quantize
        src = base_src[int(rng.integers(n_sources))] | int(rng.integers(1 << 16))
        dst = base_dst[int(rng.integers(n_dests))]
        proto = (TCP, UDP)[int(rng.integers(2))]
        pkts.append(Packet(
            timestamp=ts, src=src, dst=dst, proto=proto,
            sport=int(rng.integers(1024, 1030)),
            dport=(53, 80, 123, 443)[int(rng.integers(4))],
        ))
    return PacketRecords.from_packets(pkts)


class TestScanEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("source_length", LENGTHS)
    def test_randomized(self, seed, source_length):
        rng = np.random.default_rng(seed)
        records = _random_records(rng, 600)
        for timeout in (250.0, 3_600.0):
            assert detect_scans(records, source_length, 5, timeout) == \
                detect_scans_reference(records, source_length, 5, timeout)

    def test_gap_exactly_timeout_stays_in_session(self):
        """A gap of exactly `timeout` must NOT split the session (the
        reference closes only on strictly greater gaps)."""
        pkts = [icmp_echo_request(float(i) * 100.0, 7 << 64, (1 << 80) + i)
                for i in range(10)]
        records = PacketRecords.from_packets(pkts)
        vec = detect_scans(records, 64, 5, timeout=100.0)
        ref = detect_scans_reference(records, 64, 5, timeout=100.0)
        assert vec == ref
        assert len(vec) == 1 and vec[0].packets == 10

    def test_gap_just_over_timeout_splits(self):
        pkts = [icmp_echo_request(float(i) * 100.0, 7 << 64, (1 << 80) + i)
                for i in range(10)]
        records = PacketRecords.from_packets(pkts)
        vec = detect_scans(records, 64, 5, timeout=99.0)
        ref = detect_scans_reference(records, 64, 5, timeout=99.0)
        assert vec == ref == []

    def test_quantized_timestamps(self):
        """Duplicate timestamps and exact-timeout gaps, randomized."""
        rng = np.random.default_rng(99)
        records = _random_records(rng, 500, quantize=500.0)
        for source_length in (48, 64, 128):
            assert detect_scans(records, source_length, 3, 500.0) == \
                detect_scans_reference(records, source_length, 3, 500.0)

    def test_empty_and_singleton(self):
        assert detect_scans(PacketRecords.empty(), 64, 1, 10.0) == []
        one = PacketRecords.from_packets([icmp_echo_request(1.0, 5, 9)])
        assert detect_scans(one, 64, 1, 10.0) == \
            detect_scans_reference(one, 64, 1, 10.0)
        assert len(detect_scans(one, 64, 1, 10.0)) == 1
        assert detect_scans(one, 64, 2, 10.0) == []


class TestFlowEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized(self, seed):
        rng = np.random.default_rng(seed)
        records = _random_records(rng, 600, t_max=4_000.0)
        for timeout in (60.0, 600.0):
            assert aggregate_flows(records, timeout) == \
                aggregate_flows_reference(records, timeout)

    def test_gap_exactly_timeout_extends_flow(self):
        """The reference extends a flow on gaps <= timeout; only strictly
        larger gaps open a new flow."""
        pkts = [Packet(timestamp=float(i) * 60.0, src=5, dst=9, proto=TCP,
                       sport=4000, dport=80) for i in range(5)]
        records = PacketRecords.from_packets(pkts)
        vec = aggregate_flows(records, timeout=60.0)
        ref = aggregate_flows_reference(records, timeout=60.0)
        assert vec == ref
        assert len(vec) == 1 and vec[0].packets == 5

    def test_quantized_timestamps(self):
        rng = np.random.default_rng(7)
        records = _random_records(rng, 400, t_max=2_000.0, quantize=100.0)
        assert aggregate_flows(records, 100.0) == \
            aggregate_flows_reference(records, 100.0)

    def test_empty_and_singleton(self):
        assert aggregate_flows(PacketRecords.empty()) == []
        one = PacketRecords.from_packets([icmp_echo_request(1.0, 5, 9)])
        vec = aggregate_flows(one)
        assert vec == aggregate_flows_reference(one)
        assert len(vec) == 1 and vec[0].packets == 1


class TestOverlapShareEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("prefix_length", (32, 64, 100, 128))
    def test_randomized_shares(self, seed, prefix_length):
        rng = np.random.default_rng(seed)
        records_a = _random_records(rng, 400)
        records_b = _random_records(rng, 400)
        shared = (records_a.source_set(prefix_length)
                  & records_b.source_set(prefix_length))
        assert _traffic_share(records_a, shared, prefix_length) == \
            _traffic_share_reference(records_a, shared, prefix_length)
        assert _dest_share(records_a, shared, prefix_length) == \
            _dest_share_reference(records_a, shared, prefix_length)

    def test_empty_shared_set(self):
        rng = np.random.default_rng(0)
        records = _random_records(rng, 50)
        assert _traffic_share(records, set(), 64) == 0.0
        assert _dest_share(records, set(), 64) == 0.0

    def test_empty_records(self):
        assert _traffic_share(PacketRecords.empty(), {1 << 64}, 64) == 0.0
        assert _dest_share(PacketRecords.empty(), {1 << 64}, 64) == 0.0

    def test_overlap_report_consistency(self):
        """End-to-end: the report's shares equal the reference shares."""
        rng = np.random.default_rng(5)
        records_a = _random_records(rng, 300)
        records_b = _random_records(rng, 300)
        for level in (32, 64, 128):
            rep = overlap_report("a", records_a, "b", records_b, level)
            shared = (records_a.source_set(level)
                      & records_b.source_set(level))
            assert rep.shared_traffic_share_a == \
                _traffic_share_reference(records_a, shared, level)
            assert rep.shared_traffic_share_b == \
                _traffic_share_reference(records_b, shared, level)
            assert rep.shared_dest_share_a == \
                _dest_share_reference(records_a, shared, level)


class TestRecordsAggregationEquivalence:
    """The packed-key fast path must match brute-force Python aggregation."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("length", LENGTHS)
    def test_unique_and_sets(self, seed, length):
        rng = np.random.default_rng(seed)
        records = _random_records(rng, 300)
        srcs = list(records.src_addresses())
        dsts = list(records.dst_addresses())
        expected_src = {aggregate(s, length) for s in srcs}
        expected_dst = {aggregate(d, length) for d in dsts}
        assert records.unique_sources(length) == len(expected_src)
        assert records.unique_destinations(length) == len(expected_dst)
        assert records.source_set(length) == expected_src
        assert records.destination_set(length) == expected_dst

    @pytest.mark.parametrize("length", LENGTHS)
    def test_source_groups_partition(self, length):
        """Group ids partition rows exactly by truncated source, and ids
        are assigned in ascending truncated-source order."""
        rng = np.random.default_rng(11)
        records = _random_records(rng, 300)
        groups = records.source_groups(length)
        srcs = [aggregate(s, length) for s in records.src_addresses()]
        by_group: dict[int, set[int]] = {}
        for gid, src in zip(groups, srcs):
            by_group.setdefault(int(gid), set()).add(src)
        # each group holds exactly one truncated source value...
        assert all(len(v) == 1 for v in by_group.values())
        # ...every distinct value gets a group...
        assert len(by_group) == len(set(srcs))
        # ...and ids are dense and ascending by value.
        assert sorted(by_group) == list(range(len(by_group)))
        values_in_id_order = [next(iter(by_group[g])) for g in sorted(by_group)]
        assert values_in_id_order == sorted(values_in_id_order)
