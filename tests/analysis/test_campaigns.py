"""Tests for scan-campaign clustering."""

import numpy as np
import pytest

from repro._util import DAY, HOUR
from repro.analysis.campaigns import Campaign, campaign_summary, cluster_campaigns
from repro.analysis.records import PacketRecords
from repro.net.addr import IPv6Prefix
from repro.net.packet import icmp_echo_request, tcp_segment, TcpFlags

SRC = IPv6Prefix.parse("2620:1::/48").network | 1
OTHER = IPv6Prefix.parse("2620:2::/48").network | 1


def _burst(src, start, n=120, dst_base=1 << 80):
    return [icmp_echo_request(start + i, src, dst_base + i)
            for i in range(n)]


class TestClustering:
    def test_gap_merges_and_splits(self):
        pkts = (_burst(SRC, 0.0)
                + _burst(SRC, 1 * DAY, dst_base=2 << 80)
                + _burst(SRC, 30 * DAY, dst_base=3 << 80))
        records = PacketRecords.from_packets(pkts)
        campaigns = cluster_campaigns(records, max_gap=3 * DAY,
                                      min_targets=100)
        assert len(campaigns) == 2
        long_campaign = max(campaigns, key=lambda c: c.sessions)
        assert long_campaign.sessions == 2
        assert long_campaign.packets == 240

    def test_sources_kept_apart(self):
        pkts = _burst(SRC, 0.0) + _burst(OTHER, 0.0, dst_base=2 << 80)
        campaigns = cluster_campaigns(PacketRecords.from_packets(pkts),
                                      min_targets=100)
        assert len(campaigns) == 2
        assert {c.source for c in campaigns} == {
            SRC & ~((1 << 80) - 1), OTHER & ~((1 << 80) - 1)
        }

    def test_below_threshold_no_campaign(self):
        campaigns = cluster_campaigns(
            PacketRecords.from_packets(_burst(SRC, 0.0, n=50)),
            min_targets=100,
        )
        assert campaigns == []

    def test_sorted_by_volume(self):
        pkts = (_burst(SRC, 0.0, n=120)
                + _burst(OTHER, 0.0, n=300, dst_base=2 << 80))
        campaigns = cluster_campaigns(PacketRecords.from_packets(pkts),
                                      min_targets=100)
        assert campaigns[0].packets >= campaigns[1].packets

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            cluster_campaigns(PacketRecords.empty(), max_gap=0.0)


class TestFingerprint:
    def test_protocol_mix(self):
        pkts = _burst(SRC, 0.0, n=90) + [
            tcp_segment(200.0 + i, SRC, (1 << 80) + 1000 + i, 4000, 80,
                        TcpFlags.SYN)
            for i in range(30)
        ]
        (campaign,) = cluster_campaigns(PacketRecords.from_packets(pkts),
                                        min_targets=100)
        assert campaign.protocol_mix["icmpv6"] == pytest.approx(0.75)
        assert campaign.dominant_protocol == "icmpv6"

    def test_low_address_style(self):
        # All targets at tiny host offsets -> low-address sweep.
        pkts = [icmp_echo_request(float(i), SRC, ((i % 20) << 64) | (i % 50))
                for i in range(200)]
        (campaign,) = cluster_campaigns(PacketRecords.from_packets(pkts),
                                        min_targets=100)
        assert campaign.low_address_fraction > 0.9
        assert campaign.targeting_style == "low-address sweep"

    def test_exploration_style(self, rng):
        # Unique random high targets -> exploration.
        pkts = [
            icmp_echo_request(
                float(i), SRC,
                (1 << 80) | (1 << 32) | int(rng.integers(1 << 30, 1 << 62)),
            )
            for i in range(200)
        ]
        (campaign,) = cluster_campaigns(PacketRecords.from_packets(pkts),
                                        min_targets=100)
        assert campaign.targeting_style == "exploration (TGA-like)"

    def test_prefix_footprint(self):
        pkts = (_burst(SRC, 0.0, dst_base=1 << 80)
                + _burst(SRC, HOUR * 0.5, dst_base=2 << 80))
        (campaign,) = cluster_campaigns(PacketRecords.from_packets(pkts),
                                        min_targets=100)
        assert campaign.prefixes_48 == 2


class TestSummary:
    def test_render(self):
        campaigns = cluster_campaigns(
            PacketRecords.from_packets(_burst(SRC, 0.0)), min_targets=100,
        )
        text = campaign_summary(campaigns)
        assert "scan campaigns (1 total)" in text
        assert "styles:" in text


class TestIntegration:
    def test_campaigns_from_scenario(self, small_result):
        campaigns = cluster_campaigns(small_result.nta, min_targets=50)
        assert campaigns
        # CERNET-style exploration shows up among the big campaigns.
        styles = {c.targeting_style for c in campaigns[:5]}
        assert styles & {"exploration (TGA-like)", "mixed",
                         "low-address sweep"}
