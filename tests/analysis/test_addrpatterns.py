"""Tests for address-structure analysis."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.addrpatterns import (
    AddressProfile,
    IidClass,
    classify_iid,
    nibble_entropy_profile,
    profile_addresses,
)
from repro.net.addr import MAX_ADDRESS, parse_address


class TestClassifyIid:
    def test_low_byte(self):
        assert classify_iid(parse_address("2001:db8::1")) is IidClass.LOW_BYTE
        assert classify_iid(parse_address("2001:db8::2a")) is IidClass.LOW_BYTE

    def test_embedded_port(self):
        assert classify_iid(parse_address("2001:db8::443")) is \
            IidClass.EMBEDDED_PORT
        assert classify_iid(parse_address("2001:db8::50")) is \
            IidClass.EMBEDDED_PORT  # 0x50 == 80

    def test_eui64(self):
        addr = parse_address("2001:db8::0211:22ff:fe33:4455")
        assert classify_iid(addr) is IidClass.EUI64

    def test_embedded_ipv4(self):
        # ::c0a8:0101 (192.168.1.1 in hex nibbles).
        addr = parse_address("2001:db8::c0a8:101")
        assert classify_iid(addr) is IidClass.EMBEDDED_IPV4

    def test_pattern_bytes(self):
        addr = parse_address("2001:db8::aaaa:aaaa:aaaa:aaaa")
        assert classify_iid(addr) is IidClass.PATTERN_BYTES

    def test_random(self, rng):
        # Privacy addresses: essentially all classified random.
        hits = 0
        for _ in range(50):
            iid = int(rng.integers(1 << 62)) | (1 << 63)
            if classify_iid((0x20010DB8 << 96) | iid) is IidClass.RANDOM:
                hits += 1
        assert hits > 40


class TestProfile:
    def test_mixed_profile(self):
        addresses = (
            [parse_address(f"2001:db8::{i:x}") for i in range(1, 11)]
            + [parse_address("2001:db8::1234:5678:9abc:def0")] * 5
        )
        profile = profile_addresses(addresses)
        assert profile.total == 15
        assert profile.share(IidClass.LOW_BYTE) == pytest.approx(10 / 15)
        assert profile.dominant is IidClass.LOW_BYTE
        assert "low_byte" in profile.render()

    def test_empty(self):
        profile = profile_addresses([])
        assert profile.total == 0
        assert profile.share(IidClass.RANDOM) == 0.0
        assert profile.mean_iid_entropy == 0.0

    def test_entropy_reflects_randomness(self, rng):
        low = profile_addresses([parse_address("2001:db8::1")] * 3)
        high = profile_addresses([
            (0x20010DB8 << 96) | int(rng.integers(1 << 63, dtype=np.int64))
            for _ in range(20)
        ])
        assert high.mean_iid_entropy > low.mean_iid_entropy


class TestNibbleEntropy:
    def test_identical_addresses_zero_entropy(self):
        profile = nibble_entropy_profile([parse_address("2001:db8::1")] * 5)
        assert np.allclose(profile, 0.0)

    def test_varying_position_detected(self):
        addresses = [parse_address(f"2001:db8::{i:x}") for i in range(16)]
        profile = nibble_entropy_profile(addresses)
        assert profile[31] == pytest.approx(4.0)   # last nibble: 16 values
        assert profile[0] == 0.0                   # first nibble fixed

    def test_empty(self):
        assert nibble_entropy_profile([]).shape == (32,)

    @given(st.lists(st.integers(min_value=0, max_value=MAX_ADDRESS),
                    min_size=1, max_size=20))
    def test_entropy_bounds(self, addresses):
        profile = nibble_entropy_profile(addresses)
        assert np.all(profile >= 0.0) and np.all(profile <= 4.0)


class TestScenarioIntegration:
    def test_scanner_targets_profiled(self, small_result):
        """Destination structure reflects the scanners' targeting mix:
        low-byte sweeps plus random TGA exploration."""
        dests = list(small_result.nta.destination_set(128))
        profile = profile_addresses(dests[:5000])
        assert profile.share(IidClass.LOW_BYTE) > 0.05
        assert profile.share(IidClass.RANDOM) > 0.05
