"""Edge-case coverage across the analysis pipeline."""

import numpy as np
import pytest

from repro.analysis.asinfo import MetadataJoiner
from repro.analysis.effects import pointwise_effect_matrix
from repro.analysis.jaccard import overlap_report
from repro.analysis.records import PacketRecords
from repro.datasets.asdb import AsDatabase
from repro.datasets.geodb import GeoDatabase
from repro.datasets.prefix2as import Prefix2As
from repro.net.packet import icmp_echo_request


@pytest.fixture
def empty_joiner():
    return MetadataJoiner(Prefix2As(), AsDatabase(), GeoDatabase())


class TestEmptyInputs:
    def test_breakdown_on_empty_records(self, empty_joiner):
        breakdown = empty_joiner.breakdown(PacketRecords.empty())
        assert breakdown.total_packets == 0
        assert breakdown.top_asns == []
        assert breakdown.protocol_shares == {}
        assert breakdown.by_country == {}

    def test_top_asns_empty(self, empty_joiner):
        assert empty_joiner.top_asns(PacketRecords.empty()) == []

    def test_country_breakdown_without_geodb(self):
        joiner = MetadataJoiner(Prefix2As(), AsDatabase(), geodb=None)
        records = PacketRecords.from_packets(
            [icmp_echo_request(0.0, 1, 2)]
        )
        assert joiner.country_breakdown(records) == {}

    def test_overlap_with_empty_side(self):
        a = PacketRecords.from_packets([icmp_echo_request(0.0, 5, 9)])
        report = overlap_report("A", a, "B", PacketRecords.empty(), 64)
        assert report.jaccard == 0.0
        assert report.shared_traffic_share_a == 0.0
        assert report.shared_dest_share_a == 0.0


class TestEffectMatrix:
    def test_nan_padding(self):
        from repro.analysis.bstm import ImpactResult
        from repro.analysis.effects import EffectEstimate

        def _estimate(n_days):
            impact = ImpactResult(
                counterfactual=np.zeros(n_days),
                counterfactual_var=np.ones(n_days),
                pointwise=np.arange(n_days, dtype=float),
                average_effect=1.0, ci_low=0.5, ci_high=1.5,
                significant=True, relative_effect=1.0,
            )
            return EffectEstimate("x", "packets", 1.0, 0.5, 1.5, True,
                                  impact)

        matrix = pointwise_effect_matrix([_estimate(3), _estimate(5)], 5)
        assert matrix.shape == (2, 5)
        assert np.isnan(matrix[0, 3]) and np.isnan(matrix[0, 4])
        assert matrix[1, 4] == 4.0

    def test_truncation_to_n_days(self):
        from repro.analysis.bstm import ImpactResult
        from repro.analysis.effects import EffectEstimate

        impact = ImpactResult(
            counterfactual=np.zeros(10), counterfactual_var=np.ones(10),
            pointwise=np.arange(10, dtype=float),
            average_effect=1.0, ci_low=0.5, ci_high=1.5,
            significant=True, relative_effect=1.0,
        )
        estimate = EffectEstimate("x", "packets", 1.0, 0.5, 1.5, True,
                                  impact)
        matrix = pointwise_effect_matrix([estimate], 4)
        assert matrix.shape == (1, 4)
        assert matrix[0, 3] == 3.0


class TestEffectEstimateSummary:
    def test_summary_string(self):
        from repro.analysis.bstm import ImpactResult
        from repro.analysis.effects import EffectEstimate

        impact = ImpactResult(
            counterfactual=np.zeros(1), counterfactual_var=np.ones(1),
            pointwise=np.zeros(1), average_effect=1234.5,
            ci_low=1000.0, ci_high=1500.0, significant=True,
            relative_effect=2.0,
        )
        estimate = EffectEstimate("H_X", "traffic", 1234.5, 1000.0,
                                  1500.0, True, impact)
        text = estimate.summary()
        assert "H_X" in text and "*" in text
