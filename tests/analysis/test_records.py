"""Tests for the columnar packet records."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import DAY
from repro.analysis.records import PacketRecords
from repro.net.addr import MAX_ADDRESS, IPv6Prefix, aggregate
from repro.net.packet import ICMPV6, TCP, icmp_echo_request, tcp_segment, TcpFlags

PREFIX = IPv6Prefix.parse("2001:db8:5::/48")


@pytest.fixture
def records():
    pkts = [
        icmp_echo_request(10.0, 100, PREFIX.network | 1),
        icmp_echo_request(20.0, 100, PREFIX.network | 2),
        tcp_segment(30.0, 200, 999, 4000, 80, TcpFlags.SYN),
        icmp_echo_request(5.0, 300, PREFIX.network | 1),
    ]
    return PacketRecords.from_packets(pkts)


class TestConstruction:
    def test_from_packets_roundtrip(self, records):
        assert len(records) == 4
        assert list(records.src_addresses()) == [100, 100, 200, 300]
        assert list(records.dst_addresses())[0] == PREFIX.network | 1

    def test_empty(self):
        empty = PacketRecords.empty()
        assert len(empty) == 0
        assert empty.unique_sources() == 0
        assert empty.unique_destinations() == 0
        assert empty.source_set() == set()

    def test_concat(self, records):
        double = PacketRecords.concat([records, records])
        assert len(double) == 8
        assert PacketRecords.concat([]).ts.shape == (0,)

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError):
            PacketRecords.from_columns([1.0], [], [], [], [], [], [], [])


class TestSelection:
    def test_mask_time(self, records):
        sub = records.select(records.mask_time(10.0, 25.0))
        assert len(sub) == 2

    def test_mask_proto(self, records):
        assert int(records.mask_proto(TCP).sum()) == 1
        assert int(records.mask_proto(ICMPV6).sum()) == 3

    def test_mask_dst_in(self, records):
        assert int(records.mask_dst_in(PREFIX).sum()) == 3

    def test_mask_src_in(self, records):
        # ::/120 covers hosts 0..255, so source 300 is excluded.
        assert int(records.mask_src_in(IPv6Prefix.parse("::/120")).sum()) == 3
        assert int(records.mask_src_in(IPv6Prefix.parse("::/118")).sum()) == 4

    def test_sorted_by_time(self, records):
        ordered = records.sorted_by_time()
        assert list(ordered.ts) == sorted(records.ts)


class TestAggregation:
    def test_unique_sources(self, records):
        assert records.unique_sources(128) == 3
        assert records.unique_sources(0) == 1

    def test_unique_destinations(self, records):
        assert records.unique_destinations(128) == 3
        assert records.unique_destinations(48) == 2

    def test_source_set_values(self, records):
        assert records.source_set(128) == {100, 200, 300}

    def test_source_groups_alignment(self, records):
        groups = records.source_groups(128)
        srcs = list(records.src_addresses())
        for g, s in zip(groups, srcs):
            same = [x for x, gg in zip(srcs, groups) if gg == g]
            assert all(x == s for x in same)

    @given(
        st.lists(st.integers(min_value=0, max_value=MAX_ADDRESS),
                 min_size=1, max_size=30),
        st.integers(min_value=0, max_value=128),
    )
    def test_unique_sources_matches_python(self, sources, length):
        pkts = [icmp_echo_request(float(i), s, 1)
                for i, s in enumerate(sources)]
        records = PacketRecords.from_packets(pkts)
        expected = len({aggregate(s, length) for s in sources})
        assert records.unique_sources(length) == expected


class TestTimeSeries:
    def test_daily_packet_counts(self, records):
        counts = records.daily_packet_counts(0.0, 2 * DAY)
        assert counts.tolist() == [4.0, 0.0]

    def test_daily_packet_counts_empty_window(self, records):
        assert records.daily_packet_counts(10.0, 10.0).shape == (0,)

    def test_daily_unique(self):
        pkts = [icmp_echo_request(0.5 * DAY, 1, 9),
                icmp_echo_request(0.6 * DAY, 1, 9),
                icmp_echo_request(0.7 * DAY, 2, 9),
                icmp_echo_request(1.5 * DAY, 2, 9)]
        records = PacketRecords.from_packets(pkts)
        values = np.array([1, 1, 2, 2])
        uniq = records.daily_unique(0.0, 2 * DAY, values)
        assert uniq.tolist() == [2.0, 1.0]
