"""Streaming analysis equivalence: incremental trackers vs. batch.

The online :class:`~repro.analysis.streaming.SessionTracker` and
:class:`~repro.analysis.streaming.FlowTracker` must emit event/flow lists
*element-identical* to the batch detectors (and their per-packet
references) over the concatenation of the fed chunks — on randomized
workloads with random chunk splits, tie-heavy quantized timestamps, empty
feeds, sessions crossing chunk boundaries (the midnight case), and
aggregation lengths on both sides of the 64-bit packing threshold.
"""

import pickle

import numpy as np
import pytest

from repro._util import DAY, HOUR
from repro.analysis.flows import aggregate_flows, aggregate_flows_reference
from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import detect_scans, detect_scans_reference
from repro.analysis.streaming import (
    FlowTracker,
    SessionTracker,
    StreamAnalyzer,
)
from repro.net.packet import TCP, UDP, Packet, icmp_echo_request

LENGTHS = (128, 64, 48, 0, 96)


def _random_records(rng, n, n_sources=12, n_dests=40, t_max=20_000.0,
                    quantize=None):
    base_src = [(int(rng.integers(1 << 40)) << 88)
                | (int(rng.integers(1 << 30)) << 50)
                for _ in range(n_sources)]
    base_dst = [(int(rng.integers(1 << 60)) << 64)
                | int(rng.integers(1 << 62))
                for _ in range(n_dests)]
    pkts = []
    for _ in range(n):
        ts = float(rng.uniform(0, t_max))
        if quantize:
            ts = round(ts / quantize) * quantize
        src = base_src[int(rng.integers(n_sources))] | int(
            rng.integers(1 << 16))
        dst = base_dst[int(rng.integers(n_dests))]
        proto = (TCP, UDP)[int(rng.integers(2))]
        pkts.append(Packet(
            timestamp=ts, src=src, dst=dst, proto=proto,
            sport=int(rng.integers(1024, 1030)),
            dport=(53, 80, 123, 443)[int(rng.integers(4))],
        ))
    return PacketRecords.from_packets(pkts)


def _chunk_splits(rng, records, n_chunks):
    """Sort by time and cut into ``n_chunks`` contiguous slices (some
    possibly empty), the shape a day-boundary drain produces."""
    records = records.sorted_by_time()
    idx = np.arange(len(records))
    cuts = np.sort(rng.integers(0, len(records) + 1, size=n_chunks - 1))
    bounds = [0, *cuts.tolist(), len(records)]
    return [records.select((idx >= bounds[i]) & (idx < bounds[i + 1]))
            for i in range(n_chunks)]


class TestSessionTrackerEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("source_length", LENGTHS)
    def test_randomized_chunked(self, seed, source_length):
        rng = np.random.default_rng(seed)
        records = _random_records(rng, 500)
        for timeout in (250.0, 3_600.0):
            tracker = SessionTracker(source_length=source_length,
                                     min_targets=5, timeout=timeout)
            for chunk in _chunk_splits(rng, records,
                                       int(rng.integers(1, 8))):
                tracker.feed(chunk)
            got = tracker.finish()
            assert got == detect_scans(records, source_length, 5, timeout)
            assert got == detect_scans_reference(records, source_length, 5,
                                                 timeout)

    @pytest.mark.parametrize("seed", range(3))
    def test_quantized_ties_and_empty_feeds(self, seed):
        """Duplicate timestamps, chunk boundaries exactly on timestamps,
        gaps exactly equal to the timeout, interleaved empty feeds."""
        rng = np.random.default_rng(100 + seed)
        records = _random_records(rng, 400, quantize=100.0)
        tracker = SessionTracker(source_length=64, min_targets=3,
                                 timeout=100.0)
        for chunk in _chunk_splits(rng, records, 6):
            if rng.integers(2):
                tracker.feed(PacketRecords.empty())
            tracker.feed(chunk)
        assert tracker.finish() == detect_scans(records, 64, 3, 100.0)

    def test_midnight_crossing_session_single_event(self):
        """A scan straddling a day boundary, fed as two day chunks with
        day-boundary horizons, is one event — identical to batch and to
        the per-packet reference."""
        src = 0xABCD << 100
        pkts = [icmp_echo_request(DAY - 50 * 60 + i * 60.0, src, (1 << 80) + i)
                for i in range(100)]  # spans DAY-3000s .. DAY+2940s
        records = PacketRecords.from_packets(pkts)
        day0 = records.select(records.ts < DAY)
        day1 = records.select(records.ts >= DAY)
        assert len(day0) and len(day1)

        tracker = SessionTracker(source_length=64, min_targets=100)
        tracker.feed(day0, now=DAY)
        tracker.feed(day1, now=2 * DAY)
        got = tracker.finish()
        assert len(got) == 1
        assert got == detect_scans(records, 64, 100)
        assert got == detect_scans_reference(records, 64, 100, 3600.0)

    def test_midnight_gap_splits_into_two_events(self):
        """Same straddle but with a > timeout silence at the boundary:
        the carried session closes on the next feed, no cross-day merge."""
        src = 0xABCD << 100
        early = [icmp_echo_request(DAY - 2 * HOUR + i, src, (1 << 80) + i)
                 for i in range(120)]
        late = [icmp_echo_request(DAY + 2 * HOUR + i, src, (2 << 80) + i)
                for i in range(120)]
        records = PacketRecords.from_packets(early + late)
        tracker = SessionTracker(source_length=64, min_targets=100)
        tracker.feed(records.select(records.ts < DAY), now=DAY)
        tracker.feed(records.select(records.ts >= DAY), now=2 * DAY)
        got = tracker.finish()
        assert len(got) == 2
        assert got == detect_scans(records, 64, 100)

    def test_idle_session_expires_between_feeds(self):
        """An empty feed whose horizon passes last+timeout finalizes the
        carried session without any packet arriving."""
        src = 7 << 100
        pkts = [icmp_echo_request(i * 1.0, src, (1 << 80) + i)
                for i in range(10)]
        tracker = SessionTracker(source_length=64, min_targets=5)
        tracker.feed(PacketRecords.from_packets(pkts), now=DAY)
        assert tracker.open_sessions == 0  # horizon DAY >> last + timeout
        assert tracker.events_closed == 1

    def test_out_of_order_feed_rejected(self):
        tracker = SessionTracker(source_length=64, min_targets=5)
        tracker.feed(PacketRecords.from_packets(
            [icmp_echo_request(100.0, 7, 9)]), now=200.0)
        with pytest.raises(ValueError, match="out-of-order"):
            tracker.feed(PacketRecords.from_packets(
                [icmp_echo_request(50.0, 7, 9)]))

    def test_finish_idempotent(self):
        rng = np.random.default_rng(0)
        records = _random_records(rng, 300)
        tracker = SessionTracker(source_length=64, min_targets=5,
                                 timeout=500.0)
        tracker.feed(records.sorted_by_time())
        assert tracker.finish() == tracker.finish()


class TestFlowTrackerEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_chunked(self, seed):
        rng = np.random.default_rng(200 + seed)
        records = _random_records(rng, 400, t_max=2_000.0)
        tracker = FlowTracker(timeout=60.0)
        for chunk in _chunk_splits(rng, records, int(rng.integers(1, 6))):
            tracker.feed(chunk)
        got = tracker.finish()
        assert got == aggregate_flows(records, timeout=60.0)
        assert got == aggregate_flows_reference(records, timeout=60.0)

    def test_flow_crossing_chunk_boundary(self):
        pkts = [Packet(timestamp=t, src=5, dst=9, proto=TCP,
                       sport=4000, dport=80)
                for t in (990.0, 1000.0, 1010.0, 1030.0)]
        records = PacketRecords.from_packets(pkts)
        tracker = FlowTracker(timeout=60.0)
        tracker.feed(records.select(records.ts <= 1000.0), now=1000.0)
        tracker.feed(records.select(records.ts > 1000.0), now=1100.0)
        got = tracker.finish()
        assert got == aggregate_flows(records, timeout=60.0)
        assert len(got) == 1 and got[0].packets == 4


class TestStreamAnalyzer:
    def test_matches_batch_at_all_levels(self):
        rng = np.random.default_rng(42)
        records = _random_records(rng, 600)
        analyzer = StreamAnalyzer("NT-A", min_targets=5, timeout=500.0,
                                  flows=True, flow_timeout=60.0)
        for chunk in _chunk_splits(rng, records, 4):
            analyzer.feed(chunk)
        summary = analyzer.finish()
        assert summary.records_in == len(records)
        for level in (128, 64, 48):
            assert summary.events[level] == detect_scans(
                records, level, 5, 500.0)
        assert summary.flows == aggregate_flows(records, timeout=60.0)

    def test_pickle_roundtrip_mid_run(self):
        """Checkpointing contract: a pickled analyzer resumes to the same
        final event list as an uninterrupted one."""
        rng = np.random.default_rng(7)
        records = _random_records(rng, 500)
        chunks = _chunk_splits(rng, records, 4)

        straight = StreamAnalyzer("NT-A", min_targets=5, timeout=500.0)
        resumed = StreamAnalyzer("NT-A", min_targets=5, timeout=500.0)
        for i, chunk in enumerate(chunks):
            straight.feed(chunk)
            resumed.feed(chunk)
            if i == 1:
                resumed = pickle.loads(pickle.dumps(resumed))
        a, b = straight.finish(), resumed.finish()
        assert a.events == b.events and a.records_in == b.records_in

    def test_finish_idempotent(self):
        analyzer = StreamAnalyzer("NT-B", min_targets=5)
        analyzer.feed(PacketRecords.empty(), now=DAY)
        assert analyzer.finish() is analyzer.finish()
