"""Observer record schema, serialization, and torn-file tolerance.

The observer JSON contract: every day file round-trips through the
canonical ``observer_line`` serialization, validation rejects structural
corruption loudly, and the ``observations.jsonl`` mirror tolerates the
same crash artifacts (torn final line) the run journal does — mirrored
on ``tests/obs/test_journal_tail.py``.
"""

import copy
import json

import pytest

from repro.analysis.tactics import label_tactics
from repro.obs import JournalTail
from repro.observatory import (
    ObservatoryError,
    day_file_path,
    day_tactics,
    list_day_files,
    load_observer_day,
    observer_line,
    read_index,
    read_observations,
    update_index,
    validate_observer,
)
from repro.observatory.observer import OBSERVATIONS_NAME, TELESCOPES

from tests.observatory.conftest import DAYS, OBS_CONFIG


@pytest.fixture()
def record(serial_observatory):
    directory, _ = serial_observatory
    return load_observer_day(day_file_path(directory, DAYS - 1))


class TestSchema:
    def test_round_trip_is_canonical(self, record):
        line = observer_line(record)
        assert line.endswith("\n")
        parsed = json.loads(line)
        assert parsed == record
        assert observer_line(parsed) == line
        validate_observer(parsed)

    def test_day_files_cover_horizon_and_validate(self, serial_observatory):
        directory, result = serial_observatory
        days = [day for day, _ in list_day_files(directory)]
        assert days == list(range(DAYS))
        observations = read_observations(directory)  # validates every file
        assert [r["day"] for r in observations] == days
        assert result.observatory["days"] == DAYS
        assert result.observatory["records"] == sum(
            section["records"]
            for r in observations for section in r["telescopes"].values())

    def test_wrong_type_rejected(self, record):
        bad = dict(record, type="observer_index")
        with pytest.raises(ObservatoryError, match="expected an observer"):
            validate_observer(dict(bad, file="x", sha256="y"))

    def test_missing_telescope_rejected(self, record):
        bad = copy.deepcopy(record)
        del bad["telescopes"][TELESCOPES[0]]
        with pytest.raises(ObservatoryError, match="telescope sections"):
            validate_observer(bad)

    def test_non_integer_count_rejected(self, record):
        bad = copy.deepcopy(record)
        bad["telescopes"]["NT-A"]["events_closed"]["64"] = 1.5
        with pytest.raises(ObservatoryError, match="bad count"):
            validate_observer(bad)

    def test_combo_sum_mismatch_rejected(self, record):
        bad = copy.deepcopy(record)
        bad["tactics"]["sources"] += 1
        with pytest.raises(ObservatoryError, match="sum to sources"):
            validate_observer(bad)

    def test_incoherent_reaction_latency_rejected(self, record):
        bad = copy.deepcopy(record)
        name, entry = next(
            (name, entry) for name, entry in bad["honeyprefixes"].items()
            if entry["first_seen"] is not None)
        entry["reaction_s"] += 1.0
        with pytest.raises(ObservatoryError, match="reaction_s"):
            validate_observer(bad)

    def test_torn_day_file_rejected(self, serial_observatory, tmp_path):
        directory, _ = serial_observatory
        torn = tmp_path / "observer-00000.json"
        torn.write_text(day_file_path(directory, 0).read_text()[:-20])
        with pytest.raises(ObservatoryError, match="unreadable day file"):
            load_observer_day(torn)


class TestObservationsStream:
    def test_jsonl_is_day_file_concatenation(self, serial_observatory):
        directory, _ = serial_observatory
        body = b"".join(path.read_bytes()
                        for _, path in list_day_files(directory))
        stream = (directory / OBSERVATIONS_NAME).read_bytes()
        assert stream.startswith(body)
        trailer = stream[len(body):].decode().splitlines()
        assert len(trailer) == 1
        assert json.loads(trailer[0])["type"] == "observatory_end"

    def test_tail_tolerates_torn_final_line(self, serial_observatory,
                                            tmp_path):
        """Mirror of the journal-tail crash contract for observations."""
        directory, _ = serial_observatory
        path = tmp_path / OBSERVATIONS_NAME
        complete = (directory / OBSERVATIONS_NAME).read_bytes()
        path.write_bytes(complete + b'{"v": 1, "type": "observer", "da')

        tail = JournalTail(path)
        records = tail.poll()
        assert [r["day"] for r in records if r["type"] == "observer"] \
            == list(range(DAYS))
        assert records[-1]["type"] == "observatory_end"
        assert tail.poll() == []  # torn line held back, never yielded


class TestIndex:
    def test_index_matches_day_files(self, serial_observatory):
        directory, _ = serial_observatory
        entries = read_index(directory)
        assert [e["day"] for e in entries] == list(range(DAYS))
        for entry in entries:
            assert entry["type"] == "observer_index"
            assert len(entry["sha256"]) == 64

    def test_update_is_idempotent(self, serial_observatory):
        directory, _ = serial_observatory
        before = read_index(directory)
        assert update_index(directory) == []
        assert read_index(directory) == before

    def test_forked_history_refused(self, serial_observatory, tmp_path):
        import shutil

        directory, _ = serial_observatory
        clone = tmp_path / "data"
        shutil.copytree(directory, clone)
        day0 = day_file_path(clone, 0)
        record = json.loads(day0.read_text())
        record["telescopes"]["NT-A"]["records"] += 1  # rewrite history
        day0.write_text(observer_line(record))
        with pytest.raises(ObservatoryError, match="index entry"):
            update_index(clone)

    def test_missing_directory_is_empty(self, tmp_path):
        assert list_day_files(tmp_path / "never-written") == []
        assert read_index(tmp_path / "never-written") == []


class TestDayTactics:
    def test_matches_label_tactics_per_honeyprefix(self, serial_observatory):
        """The vectorized dedupe-then-classify kernel is pinned against
        the reference per-packet classifier on real scenario traffic."""
        from repro.sim import run_scenario

        _directory, _ = serial_observatory
        result = run_scenario(OBS_CONFIG)  # batch run, full records
        nta = result.nta
        checked = 0
        for name in sorted(result.scenario.honeyprefixes):
            hp = result.scenario.honeyprefixes[name]
            selected = nta.select(nta.mask_dst_in(hp.prefix))
            reference = label_tactics(selected, hp)
            combos, sources = day_tactics(selected, hp)
            assert combos == reference.combos, name
            assert sources == reference.total_sources, name
            checked += bool(len(selected))
        assert checked > 0  # the scenario actually exercised the kernel

    def test_bad_source_length_rejected(self):
        from repro.analysis.records import PacketRecords

        with pytest.raises(ValueError):
            day_tactics(PacketRecords.empty(), None, source_length=0)
