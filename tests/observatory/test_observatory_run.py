"""Observatory runs end to end: bit-reproducibility and crash recovery.

The reproducibility contract under test: the data directory a streaming
observatory run writes — every per-day file, the ``observations.jsonl``
mirror, the index, the manifest — is byte-identical across serial,
``--jobs N``, ``--pipeline``, and killed-and-resumed executions of one
config.  Plus the mode guards: the observer only rides a streaming run,
and a checkpoint can only resume into the observation mode that wrote it.
"""

from pathlib import Path

import pytest

from repro.observatory import Observatory, ObservatoryError, ObservatoryState
from repro.sim import ScenarioConfig, SimulationAborted, run_scenario

from tests.observatory.conftest import OBS_CONFIG, run_observatory

CADENCE = 4
ABORT_AFTER = 5

#: A lighter config for the mode-guard tests (no byte-compare needed).
GUARD = ScenarioConfig(seed=3, duration_days=6, volume_scale=1e-5, n_tail=2)


def _dir_bytes(directory) -> dict:
    return {path.name: path.read_bytes()
            for path in Path(directory).iterdir() if path.is_file()}


class TestByteIdentity:
    def test_jobs2_matches_serial(self, serial_observatory, tmp_path):
        golden, _ = serial_observatory
        run_observatory(tmp_path / "data", jobs=2)
        assert _dir_bytes(tmp_path / "data") == _dir_bytes(golden)

    def test_pipeline_matches_serial(self, serial_observatory, tmp_path):
        golden, _ = serial_observatory
        run_observatory(tmp_path / "data", pipeline=True)
        assert _dir_bytes(tmp_path / "data") == _dir_bytes(golden)

    def test_killed_and_resumed_matches_serial(self, serial_observatory,
                                               tmp_path):
        golden, _ = serial_observatory
        data = tmp_path / "data"
        ckpt = tmp_path / "ckpt"
        with pytest.raises(SimulationAborted):
            run_observatory(data, checkpoint_dir=ckpt,
                            checkpoint_every=CADENCE,
                            abort_after_day=ABORT_AFTER)
        # The realistic crash artifact: a torn final observations line.
        with open(data / "observations.jsonl", "ab") as stream:
            stream.write(b'{"v": 1, "type": "observer", "da')

        result = run_observatory(data, checkpoint_dir=ckpt,
                                 checkpoint_every=CADENCE, resume=True)
        assert result.observatory["days"] == OBS_CONFIG.duration_days
        # The resume healed the torn line: every file byte-identical,
        # checkpoint sidecar aside, to the uninterrupted run's.
        assert _dir_bytes(data) == _dir_bytes(golden)


class TestModeGuards:
    def test_observe_requires_streaming(self, tmp_path):
        with pytest.raises(ValueError, match="requires stream_analysis"):
            run_scenario(GUARD, observe_dir=tmp_path / "data")

    def test_plain_checkpoint_cannot_resume_into_observe(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(SimulationAborted):
            run_scenario(GUARD, stream_analysis=True, checkpoint_dir=ckpt,
                         checkpoint_every=2, abort_after_day=3)
        with pytest.raises(ValueError, match="non-observatory checkpoint"):
            run_scenario(GUARD, stream_analysis=True, checkpoint_dir=ckpt,
                         resume=True, observe_dir=tmp_path / "data")

    def test_observatory_checkpoint_cannot_drop_observe(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(SimulationAborted):
            run_scenario(GUARD, stream_analysis=True, checkpoint_dir=ckpt,
                         checkpoint_every=2, abort_after_day=3,
                         observe_dir=tmp_path / "data")
        with pytest.raises(ValueError, match="without[ \n]+observe_dir"):
            run_scenario(GUARD, stream_analysis=True, checkpoint_dir=ckpt,
                         resume=True)

    def test_directory_refuses_foreign_config(self, tmp_path):
        observatory = Observatory(tmp_path / "data", GUARD)
        observatory.close()
        with pytest.raises(ObservatoryError, match="different config"):
            Observatory(tmp_path / "data", OBS_CONFIG)

    def test_days_must_be_observed_in_order(self, tmp_path):
        observatory = Observatory(tmp_path / "data", GUARD)
        try:
            with pytest.raises(ObservatoryError, match="in order"):
                observatory.observe_day(3, None, None, {})
        finally:
            observatory.close()

    def test_state_day_mismatch_rejected(self, tmp_path):
        with pytest.raises(ObservatoryError, match="resumes at day"):
            Observatory(tmp_path / "data", GUARD, start_day=4,
                        state=ObservatoryState(next_day=2))

    def test_resume_with_missing_day_file_rejected(self, tmp_path):
        state = ObservatoryState(
            next_day=2,
            seen_sources={t: {lv: set() for lv in (128, 64, 48)}
                          for t in ("NT-A", "NT-B", "NT-C")},
            event_counts={t: {lv: 0 for lv in (128, 64, 48)}
                          for t in ("NT-A", "NT-B", "NT-C")})
        with pytest.raises(ObservatoryError, match="missing day file"):
            Observatory(tmp_path / "data", GUARD, start_day=2, state=state)


class TestOpsCounters:
    def test_registry_sees_observatory_activity(self, tmp_path):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            result = run_scenario(GUARD, stream_analysis=True,
                                  observe_dir=tmp_path / "data")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["observatory.days"] \
            == GUARD.duration_days
        assert snapshot["counters"]["observatory.records"] \
            == result.observatory["records"]
        assert snapshot["timings"]["observatory.emit"]["count"] \
            == GUARD.duration_days
