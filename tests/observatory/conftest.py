"""Shared observatory-test fixtures.

``OBS_CONFIG`` mirrors the crash-tolerance config from
``tests/obs/test_journal_tail.py``: 12 days, all three tactic phases plus
the hyper-specific targeting window, small enough to stream in seconds
but busy enough that every telescope drains packets and several
honeyprefixes attract traffic (so observer records are non-trivial).
"""

import pytest

from repro.sim import ScenarioConfig, run_scenario

DAYS = 12

OBS_CONFIG = ScenarioConfig(seed=19, duration_days=DAYS, volume_scale=1e-4,
                            n_tail=20, phase1_day=2, phase2_day=4,
                            phase3_day=6, specific_start_day=7,
                            withdraw_after_days=5)


def run_observatory(directory, **kwargs):
    """One streaming observatory run of the shared config."""
    return run_scenario(OBS_CONFIG, stream_analysis=True,
                        observe_dir=directory, **kwargs)


@pytest.fixture(scope="session")
def serial_observatory(tmp_path_factory):
    """The golden serial run: ``(data directory, ScenarioResult)``."""
    directory = tmp_path_factory.mktemp("obs-serial") / "data"
    result = run_observatory(directory)
    return directory, result
