"""DriftReport: pinned changepoints on toy series, trends, round-trips.

The changepoint engine's acceptance tests use synthetic daily series
with *known* injected shifts: detection must name the exact day, the
effect must carry the injected sign and magnitude, and the whole
analysis must be deterministic (fixed bootstrap seed).
"""

import json

import numpy as np
import pytest

from repro.observatory import DriftReport


def _step_series(n=30, at=20, base=10.0, shift=8.0, noise=0.5, seed=7):
    rng = np.random.default_rng(seed)
    y = base + rng.normal(0.0, noise, size=n)
    y[at:] += shift
    return y


class TestChangepoint:
    def test_noisy_step_detected_at_exact_day(self):
        y = _step_series()
        cp = DriftReport(range(30), {"step": y}).changepoint("step")
        assert cp is not None
        assert cp.day == 20 and cp.index == 20
        assert cp.significant
        # Effect size recovers the injected +8 shift (within the noise).
        assert cp.shift == pytest.approx(8.0, abs=0.5)
        assert cp.ci_low <= cp.shift <= cp.ci_high
        assert cp.z > 3.0

    def test_downward_step_has_negative_shift(self):
        y = np.where(np.arange(30) < 18, 9.0, 1.0).astype(float)
        cp = DriftReport(range(30), {"down": y}).changepoint("down")
        assert cp is not None
        assert cp.day == 18
        assert cp.shift == pytest.approx(-8.0, abs=1e-6)
        assert cp.significant

    def test_day_labels_follow_the_day_axis(self):
        """`day` is the simulated day, not the series position."""
        days = range(100, 130)
        cp = DriftReport(days, {"step": _step_series()}).changepoint("step")
        assert cp.index == 20 and cp.day == 120

    def test_flat_series_has_no_changepoint(self):
        report = DriftReport(range(10), {"flat": np.ones(10)})
        assert report.changepoint("flat") is None

    def test_short_series_has_no_changepoint(self):
        report = DriftReport(range(5), {"s": np.arange(5.0)})
        assert report.changepoint("s") is None

    def test_deterministic(self):
        y = _step_series()
        a = DriftReport(range(30), {"y": y}).changepoint("y")
        b = DriftReport(range(30), {"y": y}).changepoint("y")
        assert a == b


class TestTrend:
    def test_slope_exact_on_linear_series(self):
        y = 3.0 * np.arange(12) + 2.0
        drift = DriftReport(range(12), {"lin": y}).drift("lin")
        assert drift.trend_slope == pytest.approx(3.0)
        assert drift.mean == pytest.approx(float(y.mean()))

    def test_recent_mean_uses_trailing_window(self):
        y = np.concatenate([np.zeros(10), np.full(7, 5.0)])
        drift = DriftReport(range(17), {"y": y}, window=7,
                            z_threshold=np.inf).drift("y")
        assert drift.recent_mean == pytest.approx(5.0)


class TestConstruction:
    def _records(self, values):
        level_zero = {"128": 0, "64": 0, "48": 0}
        return [
            {
                "v": 1, "type": "observer", "day": day,
                "telescopes": {
                    name: {"records": int(v), "events_closed": level_zero,
                           "open_sessions": level_zero,
                           "new_sources": level_zero}
                    for name in ("NT-A", "NT-B", "NT-C")
                },
                "tactics": {"sources": 0, "combos": {}, "shares": {}},
                "honeyprefixes": {},
            }
            for day, v in enumerate(values)
        ]

    def test_from_observations_ignores_end_marker_and_sorts(self):
        records = self._records([1, 2, 3])
        shuffled = [records[2], records[0], records[1],
                    {"v": 1, "type": "observatory_end",
                     "days": 3, "records": 6}]
        report = DriftReport.from_observations(shuffled)
        assert report.days == [0, 1, 2]
        assert list(report.series["NT-A.records"]) == [1.0, 2.0, 3.0]
        assert "tactics.sources" in report.series

    def test_no_observer_records_rejected(self):
        with pytest.raises(ValueError, match="no observer records"):
            DriftReport.from_observations(
                [{"v": 1, "type": "observatory_end",
                  "days": 0, "records": 0}])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="has 2 values"):
            DriftReport(range(3), {"y": [1.0, 2.0]})


class TestRendering:
    def test_render_and_json_agree(self, serial_observatory):
        directory, _ = serial_observatory
        report = DriftReport.from_data_dir(directory)
        rendered = report.render()
        assert "Observatory drift report" in rendered
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["days"] == report.days
        for drift in report.summaries():
            assert drift.name in rendered
            entry = payload["series"][drift.name]
            assert entry["mean"] == pytest.approx(drift.mean)
