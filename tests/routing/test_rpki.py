"""Tests for ROA validation."""

import pytest

from repro.net.addr import IPv6Prefix
from repro.routing.rpki import Roa, RoaRegistry, RpkiValidity


@pytest.fixture
def registry():
    reg = RoaRegistry()
    reg.register(Roa(IPv6Prefix.parse("2001:db8::/32"), asn=64500,
                     max_length=48, registered_at=100.0))
    return reg


def test_valid(registry):
    assert registry.validate(
        IPv6Prefix.parse("2001:db8:5::/48"), 64500
    ) is RpkiValidity.VALID


def test_invalid_wrong_origin(registry):
    assert registry.validate(
        IPv6Prefix.parse("2001:db8:5::/48"), 64501
    ) is RpkiValidity.INVALID


def test_invalid_too_long(registry):
    assert registry.validate(
        IPv6Prefix.parse("2001:db8:5:8000::/49"), 64500
    ) is RpkiValidity.INVALID


def test_not_found(registry):
    assert registry.validate(
        IPv6Prefix.parse("2002::/16"), 64500
    ) is RpkiValidity.NOT_FOUND


def test_time_gating(registry):
    """A ROA cannot protect a route announced before it existed."""
    prefix = IPv6Prefix.parse("2001:db8:5::/48")
    assert registry.validate(prefix, 64500, at=50.0) is RpkiValidity.NOT_FOUND
    assert registry.validate(prefix, 64500, at=150.0) is RpkiValidity.VALID


def test_roa_validates_own_prefix(registry):
    assert registry.validate(
        IPv6Prefix.parse("2001:db8::/32"), 64500
    ) is RpkiValidity.VALID


def test_roa_rejects_bad_max_length():
    with pytest.raises(ValueError):
        Roa(IPv6Prefix.parse("2001:db8::/32"), asn=1, max_length=16)
    with pytest.raises(ValueError):
        Roa(IPv6Prefix.parse("2001:db8::/32"), asn=1, max_length=129)


def test_roa_rejects_bad_asn():
    with pytest.raises(ValueError):
        Roa(IPv6Prefix.parse("2001:db8::/32"), asn=0, max_length=48)


def test_covers():
    roa = Roa(IPv6Prefix.parse("2001:db8::/32"), asn=1, max_length=48)
    assert roa.covers(IPv6Prefix.parse("2001:db8:1::/48"))
    assert not roa.covers(IPv6Prefix.parse("2001:db8:1:8000::/49"))
    assert not roa.covers(IPv6Prefix.parse("2002::/32"))
