"""Tests for the BGP speaker."""

import pytest

from repro.net.addr import IPv6Prefix
from repro.routing.collectors import CollectorSystem
from repro.routing.messages import Announcement, Withdrawal
from repro.routing.rpki import RoaRegistry
from repro.routing.speaker import BgpSpeaker


@pytest.fixture
def speaker():
    registry = RoaRegistry()
    collectors = CollectorSystem(rng=0, roa_registry=registry)
    return BgpSpeaker(64500, collectors, registry)


def test_announce_installs_locally_and_propagates(speaker):
    prefix = IPv6Prefix.parse("2001:db8:1::/48")
    speaker.register_roa(prefix, at=0.0)
    speaker.announce(prefix, at=100.0)
    assert prefix in [r.prefix for r in speaker.local_rib.routes()]
    assert speaker.collectors.visibility_count(prefix, 1e5) > 0
    assert speaker.originated() == [prefix]


def test_withdraw_requires_origination(speaker):
    prefix = IPv6Prefix.parse("2001:db8:1::/48")
    with pytest.raises(ValueError):
        speaker.withdraw(prefix, at=100.0)


def test_withdraw_round_trip(speaker):
    prefix = IPv6Prefix.parse("2001:db8:1::/48")
    speaker.register_roa(prefix, at=0.0)
    speaker.announce(prefix, at=100.0)
    speaker.withdraw(prefix, at=10_000.0)
    assert speaker.originated() == []
    assert speaker.collectors.visibility_count(prefix, 1e6) == 0
    kinds = [type(m) for m in speaker.history]
    assert kinds == [Announcement, Withdrawal]


def test_register_roa_requires_registry():
    speaker = BgpSpeaker(64500, CollectorSystem(rng=0))
    with pytest.raises(RuntimeError):
        speaker.register_roa(IPv6Prefix.parse("2001:db8::/32"), at=0.0)


def test_rejects_bad_asn():
    with pytest.raises(ValueError):
        BgpSpeaker(0, CollectorSystem(rng=0))


def test_announcement_path_validation():
    with pytest.raises(ValueError):
        Announcement(IPv6Prefix.parse("2001:db8::/32"), 64500, 0.0,
                     as_path=(1, 2))


def test_announcement_extended():
    ann = Announcement(IPv6Prefix.parse("2001:db8::/32"), 64500, 0.0,
                       as_path=(64500,))
    assert ann.extended(100).as_path == (100, 64500)
