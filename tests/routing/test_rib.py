"""Tests for the RIB, including a brute-force LPM property check."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import MAX_ADDRESS, IPv6Address, IPv6Prefix
from repro.routing.rib import Rib, Route


def _route(text: str, asn: int = 1) -> Route:
    return Route(prefix=IPv6Prefix.parse(text), origin_asn=asn)


class TestRibBasics:
    def test_insert_and_exact(self):
        rib = Rib()
        route = _route("2001:db8::/32")
        rib.insert(route)
        assert rib.exact(route.prefix) is route
        assert len(rib) == 1
        assert route.prefix in rib

    def test_replace_same_prefix(self):
        rib = Rib()
        rib.insert(_route("2001:db8::/32", asn=1))
        rib.insert(_route("2001:db8::/32", asn=2))
        assert len(rib) == 1
        assert rib.exact(IPv6Prefix.parse("2001:db8::/32")).origin_asn == 2

    def test_withdraw(self):
        rib = Rib()
        route = _route("2001:db8::/32")
        rib.insert(route)
        assert rib.withdraw(route.prefix) is route
        assert rib.withdraw(route.prefix) is None
        assert len(rib) == 0

    def test_lookup_longest_match(self):
        rib = Rib()
        rib.insert(_route("2001:db8::/32", asn=1))
        rib.insert(_route("2001:db8:5::/48", asn=2))
        inside = IPv6Address.parse("2001:db8:5::9").value
        outside = IPv6Address.parse("2001:db8:6::9").value
        assert rib.lookup(inside).origin_asn == 2
        assert rib.lookup(outside).origin_asn == 1
        assert rib.lookup(0) is None

    def test_lookup_after_withdrawing_specific(self):
        rib = Rib()
        rib.insert(_route("2001:db8::/32", asn=1))
        rib.insert(_route("2001:db8:5::/48", asn=2))
        rib.withdraw(IPv6Prefix.parse("2001:db8:5::/48"))
        inside = IPv6Address.parse("2001:db8:5::9").value
        assert rib.lookup(inside).origin_asn == 1

    def test_covered_by(self):
        rib = Rib()
        rib.insert(_route("2001:db8::/32"))
        rib.insert(_route("2001:db8:5::/48"))
        rib.insert(_route("2002::/16"))
        covered = rib.covered_by(IPv6Prefix.parse("2001:db8::/32"))
        assert {str(r.prefix) for r in covered} == {
            "2001:db8::/32", "2001:db8:5::/48"
        }

    def test_routes_iteration(self):
        rib = Rib()
        rib.insert(_route("2001:db8::/32"))
        rib.insert(_route("2002::/16"))
        assert len(list(rib.routes())) == 2


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=MAX_ADDRESS),
            st.integers(min_value=0, max_value=128),
        ),
        min_size=1, max_size=30,
    ),
    st.integers(min_value=0, max_value=MAX_ADDRESS),
)
def test_lpm_matches_bruteforce(entries, probe):
    rib = Rib()
    prefixes = []
    for value, length in entries:
        prefix = IPv6Address(value).prefix(length)
        prefixes.append(prefix)
        rib.insert(Route(prefix=prefix, origin_asn=length + 1))
    expected = None
    for prefix in prefixes:
        if probe in prefix:
            if expected is None or prefix.length > expected.length:
                expected = prefix
    got = rib.lookup(probe)
    if expected is None:
        assert got is None
    else:
        assert got.prefix.length == expected.length
