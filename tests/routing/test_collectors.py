"""Tests for the collector system and propagation model."""

import pytest

from repro.net.addr import IPv6Prefix
from repro.routing.collectors import CollectorSystem, RouteCollector
from repro.routing.messages import Announcement, Withdrawal
from repro.routing.rpki import Roa, RoaRegistry


def _announce(prefix: str, asn: int = 64500, at: float = 100.0) -> Announcement:
    return Announcement(IPv6Prefix.parse(prefix), asn, at, (asn,))


class TestPropagation:
    def test_48_reaches_most_collectors(self):
        system = CollectorSystem(rng=0)
        reached = system.announce(_announce("2001:db8:1::/48"))
        assert 20 <= len(reached) <= 36

    def test_hyper_specific_reaches_only_permissive(self):
        system = CollectorSystem(rng=0, n_permissive=5)
        reached = system.announce(_announce("2001:db8:1:8000::/56"))
        assert len(reached) == 5
        assert all(c.accepts_hyper_specific for c in reached)

    def test_visibility_count_tracks_time(self):
        system = CollectorSystem(rng=0)
        system.announce(_announce("2001:db8:1::/48", at=100.0))
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        assert system.visibility_count(prefix, 99.0) == 0
        assert system.visibility_count(prefix, 100.0 + 3600) >= 20

    def test_withdrawal_clears_visibility(self):
        system = CollectorSystem(rng=0)
        system.announce(_announce("2001:db8:1::/48", at=100.0))
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        system.withdraw(Withdrawal(prefix, 64500, 10_000.0))
        assert system.visibility_count(prefix, 20_000.0) == 0

    def test_rpki_strict_collectors_reject_unregistered(self):
        registry = RoaRegistry()
        system = CollectorSystem(rng=0, roa_registry=registry)
        strict = sum(1 for c in system.collectors if c.rpki_strict)
        assert strict > 0
        reached = system.announce(_announce("2001:db8:1::/48"))
        assert all(not c.rpki_strict for c in reached)

    def test_rpki_valid_passes_strict(self):
        registry = RoaRegistry()
        registry.register(Roa(IPv6Prefix.parse("2001:db8::/32"), 64500,
                              max_length=48))
        system = CollectorSystem(rng=0, roa_registry=registry)
        reached = system.announce(_announce("2001:db8:1::/48"))
        assert any(c.rpki_strict for c in reached)

    def test_rejects_bad_permissive_count(self):
        with pytest.raises(ValueError):
            CollectorSystem(n_permissive=50, n_collectors=36)


class TestFeeds:
    def test_new_prefixes_dedup(self):
        system = CollectorSystem(rng=0)
        system.announce(_announce("2001:db8:1::/48", at=100.0))
        new = system.new_prefixes(0.0, 1e6)
        assert list(new) == [IPv6Prefix.parse("2001:db8:1::/48")]
        # earliest visibility across collectors
        assert new[IPv6Prefix.parse("2001:db8:1::/48")] >= 100.0

    def test_new_prefixes_excludes_withdrawals(self):
        system = CollectorSystem(rng=0)
        system.announce(_announce("2001:db8:1::/48", at=100.0))
        system.withdraw(Withdrawal(IPv6Prefix.parse("2001:db8:1::/48"),
                                   64500, 5_000.0))
        # Withdrawal events are in the update feed but not in new_prefixes.
        assert any(e.is_withdrawal
                   for e in system.visible_updates(4_000.0, 1e6))
        assert IPv6Prefix.parse("2001:db8:1::/48") not in system.new_prefixes(
            4_000.0, 1e6
        )

    def test_poll_window_semantics(self):
        system = CollectorSystem(rng=0)
        system.announce(_announce("2001:db8:1::/48", at=100.0))
        # Everything visible by t=1e6; nothing visible in a later window.
        assert len(list(system.visible_updates(1e6, 2e6))) == 0


class TestRouteCollector:
    def test_events_sorted_by_visibility(self):
        collector = RouteCollector("rc")
        a1 = _announce("2001:db8:1::/48", at=100.0)
        a2 = _announce("2001:db8:2::/48", at=50.0)
        collector.record(a1, visible_at=500.0)
        collector.record(a2, visible_at=200.0)
        times = [e.visible_at for e in collector.events()]
        assert times == sorted(times)

    def test_carries_respects_withdrawal_order(self):
        collector = RouteCollector("rc")
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        collector.record(_announce("2001:db8:1::/48"), visible_at=100.0)
        collector.record(Withdrawal(prefix, 64500, 200.0), visible_at=300.0)
        assert collector.carries(prefix, 150.0)
        assert not collector.carries(prefix, 400.0)
