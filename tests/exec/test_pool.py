"""Tests for the process-pool executor: determinism, partitioning, errors."""

import pickle

import pytest

from repro.exec import (
    UnknownExperimentError,
    freeze_result,
    parallel_map,
    partition_ids,
    resolve_ids,
    run_experiments,
)
from repro.experiments import EXPERIMENTS
from repro.experiments.report import run_all

#: A fast mixed selection: two standalone drivers, two scenario consumers
#: (one of them jobs-aware).
MIXED_IDS = ["table2", "table1", "fig9", "fig10"]


class TestIdHandling:
    def test_resolve_all(self):
        assert resolve_ids(None) == list(EXPERIMENTS)
        assert resolve_ids("all") == list(EXPERIMENTS)
        assert resolve_ids(["all"]) == list(EXPERIMENTS)

    def test_resolve_keeps_order(self):
        assert resolve_ids(["fig9", "table1"]) == ["fig9", "table1"]

    def test_unknown_raises_cleanly(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            resolve_ids(["table1", "bogus"])
        message = str(excinfo.value)
        assert message.startswith("unknown experiment id(s): bogus")
        assert "\n" not in message  # one CLI-ready line, no repr wrapping

    def test_partition_preserves_order(self):
        standalone, scenario = partition_ids(MIXED_IDS)
        assert standalone == ["table2"]
        assert scenario == ["table1", "fig9", "fig10"]
        assert all(not EXPERIMENTS[i][1] for i in standalone)
        assert all(EXPERIMENTS[i][1] for i in scenario)


class TestDeterminism:
    def test_serial_matches_run_all(self, small_result):
        expected = run_all(small_result, experiment_ids=MIXED_IDS)
        actual = run_experiments(ids=MIXED_IDS, result=small_result, jobs=1)
        assert actual == expected

    def test_jobs2_matches_serial(self, small_result):
        expected = run_experiments(ids=MIXED_IDS, result=small_result, jobs=1)
        actual = run_experiments(ids=MIXED_IDS, result=small_result, jobs=2)
        assert actual == expected

    def test_single_section_inner_jobs(self, small_result):
        """One selected section hands the worker budget to the driver."""
        expected = run_experiments(ids=["fig10"], result=small_result, jobs=1)
        actual = run_experiments(ids=["fig10"], result=small_result, jobs=2)
        assert actual == expected

    def test_standalone_only_needs_no_scenario(self):
        report = run_experiments(ids=["table2", "table5"], jobs=2)
        assert "## table2" in report and "## table5" in report

    def test_output_path(self, small_result, tmp_path):
        path = tmp_path / "report.txt"
        report = run_experiments(ids=["table2"], output_path=path)
        assert path.read_text() == report


class TestJobsAwareDrivers:
    def test_driver_jobs_identical(self, small_result):
        from repro.experiments.effects import fig10, fig8, table4

        assert table4(small_result, jobs=2).render() == \
            table4(small_result, jobs=1).render()
        assert fig8(small_result, jobs=2).render() == \
            fig8(small_result, jobs=1).render()
        assert fig10(small_result, jobs=2).render() == \
            fig10(small_result, jobs=1).render()


class TestFreeze:
    def test_frozen_result_pickles(self, small_result):
        frozen = freeze_result(small_result)
        clone = pickle.loads(pickle.dumps(frozen))
        assert clone.scenario.frozen
        assert clone.honeyprefixes.keys() == small_result.honeyprefixes.keys()
        assert len(clone.nta) == len(small_result.nta)

    def test_frozen_sections_match_live(self, small_result):
        from repro.experiments.report import render_section

        frozen = freeze_result(small_result)
        for experiment_id in ("table1", "fig9", "table4"):
            assert render_section(experiment_id, frozen) == \
                render_section(experiment_id, small_result)


def _square(x):
    return x * x


def _fail(x):
    raise RuntimeError(f"task {x} failed")


class TestParallelMap:
    def test_inline_and_pooled_agree(self):
        tasks = [(i,) for i in range(6)]
        assert parallel_map(_square, tasks, jobs=1) == \
            parallel_map(_square, tasks, jobs=3) == [0, 1, 4, 9, 16, 25]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="task 1 failed"):
            parallel_map(_fail, [(1,), (2,)], jobs=2)
