"""Tests for the on-disk scenario cache: hit/miss, invalidation, recovery."""

import json

import numpy as np
import pytest

from repro.exec import ScenarioCache, freeze_result
from repro.obs import MetricsRegistry, use_registry
from repro.sim import ScenarioConfig, run_scenario

#: Small enough to simulate in well under a second, large enough to capture
#: packets on every telescope.
TINY = ScenarioConfig(seed=3, duration_days=3, volume_scale=1e-5, n_tail=2)


@pytest.fixture(scope="module")
def tiny_result():
    return run_scenario(TINY)


class TestStoreLoad:
    def test_load_before_store_misses(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        registry = MetricsRegistry()
        with use_registry(registry):
            assert cache.load(TINY) is None
        snap = registry.snapshot()["counters"]
        assert snap["scenario.cache.misses"] == 1
        # Nothing existed, so nothing was "invalid".
        assert "scenario.cache.invalid" not in snap

    def test_roundtrip_preserves_everything(self, tmp_path, tiny_result):
        cache = ScenarioCache(tmp_path)
        cache.store(tiny_result)
        loaded = cache.load(TINY)
        assert loaded is not None
        for name in ("nta", "ntb", "ntc"):
            original = getattr(tiny_result, name)
            restored = getattr(loaded, name)
            assert np.array_equal(original.ts, restored.ts)
            assert np.array_equal(original.src_hi, restored.src_hi)
            assert np.array_equal(original.src_lo, restored.src_lo)
            assert np.array_equal(original.dport, restored.dport)
        assert set(loaded.truth) == set(tiny_result.truth)
        for name, truth in tiny_result.truth.items():
            assert np.array_equal(truth.origin, loaded.truth[name].origin)
        assert loaded.config == TINY
        assert loaded.honeyprefixes.keys() == tiny_result.honeyprefixes.keys()
        # The frozen scenario still supports the experiment-facing surface.
        assert loaded.scenario.live_prefixes == tiny_result.scenario.live_prefixes
        assert len(loaded.control_records()) == len(tiny_result.control_records())

    def test_loaded_result_is_frozen(self, tmp_path, tiny_result):
        cache = ScenarioCache(tmp_path)
        cache.store(tiny_result)
        loaded = cache.load(TINY)
        assert loaded.scenario.frozen
        with pytest.raises(RuntimeError):
            loaded.scenario.run()

    def test_different_config_misses(self, tmp_path, tiny_result):
        cache = ScenarioCache(tmp_path)
        cache.store(tiny_result)
        other = ScenarioConfig(seed=4, duration_days=3,
                               volume_scale=1e-5, n_tail=2)
        assert cache.load(other) is None

    def test_store_is_idempotent(self, tmp_path, tiny_result):
        cache = ScenarioCache(tmp_path)
        entry1 = cache.store(tiny_result)
        entry2 = cache.store(tiny_result)
        assert entry1 == entry2
        assert cache.load(TINY) is not None


class TestInvalidation:
    def test_version_bump_changes_key(self, tmp_path, tiny_result,
                                      monkeypatch):
        cache = ScenarioCache(tmp_path)
        cache.store(tiny_result)
        monkeypatch.setattr("repro.__version__", "99.0-test")
        assert cache.load(TINY) is None

    def test_stale_version_in_manifest_misses(self, tmp_path, tiny_result,
                                              monkeypatch):
        """An entry whose manifest names another version never loads, even
        when it sits at the right path."""
        cache = ScenarioCache(tmp_path)
        entry = cache.store(tiny_result)
        manifest_path = entry / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["repro_version"] = "0.0-stale"
        manifest_path.write_text(json.dumps(manifest))
        registry = MetricsRegistry()
        with use_registry(registry):
            assert cache.load(TINY) is None
        assert registry.snapshot()["counters"]["scenario.cache.invalid"] == 1

    def test_schema_bump_misses(self, tmp_path, tiny_result):
        cache = ScenarioCache(tmp_path)
        entry = cache.store(tiny_result)
        manifest_path = entry / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["cache_schema"] = -1
        manifest_path.write_text(json.dumps(manifest))
        assert cache.load(TINY) is None


class TestCorruptionRecovery:
    def test_corrupt_file_is_a_miss(self, tmp_path, tiny_result):
        cache = ScenarioCache(tmp_path)
        entry = cache.store(tiny_result)
        payload = bytearray((entry / "nta.npz").read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (entry / "nta.npz").write_bytes(bytes(payload))
        registry = MetricsRegistry()
        with use_registry(registry):
            assert cache.load(TINY) is None
        counters = registry.snapshot()["counters"]
        assert counters["scenario.cache.invalid"] == 1
        assert counters["scenario.cache.misses"] == 1

    def test_missing_file_is_a_miss(self, tmp_path, tiny_result):
        cache = ScenarioCache(tmp_path)
        entry = cache.store(tiny_result)
        (entry / "meta.pkl").unlink()
        assert cache.load(TINY) is None

    def test_rerun_overwrites_corrupt_entry(self, tmp_path, tiny_result):
        cache = ScenarioCache(tmp_path)
        entry = cache.store(tiny_result)
        (entry / "manifest.json").write_text("{not json")
        assert cache.load(TINY) is None
        # A cached run repairs the entry: simulate once, store, then hit.
        rerun = run_scenario(TINY, cache_dir=tmp_path)
        assert np.array_equal(rerun.nta.ts, tiny_result.nta.ts)
        assert cache.load(TINY) is not None


class TestRunScenarioIntegration:
    def test_warm_run_skips_simulation(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            cold = run_scenario(TINY, cache_dir=tmp_path)
        cold_counters = registry.snapshot()["counters"]
        assert cold_counters["scenario.cache.misses"] == 1
        assert cold_counters["scenario.cache.stores"] == 1

        registry = MetricsRegistry()
        with use_registry(registry):
            warm = run_scenario(TINY, cache_dir=tmp_path)
        snap = registry.snapshot()
        assert snap["counters"]["scenario.cache.hits"] == 1
        # The simulation stages never ran on the warm path.
        assert "scenario.build" not in snap["timings"]
        assert "scenario.run" not in snap["timings"]
        assert np.array_equal(cold.nta.ts, warm.nta.ts)

    def test_freeze_is_idempotent(self, tiny_result):
        frozen = freeze_result(tiny_result)
        refrozen = freeze_result(frozen)
        assert refrozen.scenario.frozen
        assert refrozen.config == tiny_result.config
