"""Cache lifecycle: fault injection, size accounting, LRU eviction, pins.

The fault-injection property under test: flipping *any* byte of *any*
file in a stored entry must surface as a verification failure — the load
reports a miss and the caller transparently re-simulates; corrupt arrays
are never served.  Offsets are sampled property-style (both ends of every
file plus seeded random interior positions) because hashing the entry
once per byte would take minutes for zero extra coverage.
"""

import os

import numpy as np
import pytest

from repro.exec.cache import PINS_FILE, ScenarioCache
from repro.obs import MetricsRegistry, use_registry
from repro.sim import ScenarioConfig, run_scenario

TINY = ScenarioConfig(seed=13, duration_days=3, volume_scale=1e-5, n_tail=2)


@pytest.fixture(scope="module")
def tiny_result():
    return run_scenario(TINY)


@pytest.fixture()
def warm_cache(tmp_path, tiny_result):
    cache = ScenarioCache(tmp_path)
    cache.store(tiny_result)
    return cache


def _entry_files(entry):
    return sorted(p for p in entry.iterdir() if p.is_file())


class TestFaultInjection:
    def test_any_bitflip_in_any_file_is_a_verify_miss(self, warm_cache):
        entry = warm_cache.entry_dir(TINY)
        rng = np.random.default_rng(99)
        flipped = 0
        for path in _entry_files(entry):
            payload = bytearray(path.read_bytes())
            size = len(payload)
            offsets = {0, size // 2, size - 1}
            offsets.update(int(o) for o in rng.integers(0, size, size=4))
            for offset in sorted(offsets):
                original = payload[offset]
                payload[offset] ^= 0x01  # a single flipped bit suffices
                path.write_bytes(bytes(payload))
                assert not warm_cache.probe(TINY), (path.name, offset)
                assert warm_cache.load(TINY) is None, (path.name, offset)
                payload[offset] = original
                flipped += 1
            path.write_bytes(bytes(payload))
        assert flipped >= 3 * 9  # every file, several offsets each
        # Restored byte-for-byte, the entry verifies again.
        assert warm_cache.probe(TINY)

    def test_corrupt_entry_is_transparently_rerun(self, tmp_path,
                                                  tiny_result):
        cache = ScenarioCache(tmp_path)
        entry = cache.store(tiny_result)
        nta = entry / "nta.npz"
        payload = bytearray(nta.read_bytes())
        payload[len(payload) // 3] ^= 0x80
        nta.write_bytes(bytes(payload))

        registry = MetricsRegistry()
        with use_registry(registry):
            rerun = run_scenario(TINY, cache_dir=tmp_path)
        counters = registry.snapshot()["counters"]
        # Served by re-simulation (miss + store), never the corrupt bytes.
        assert counters["scenario.cache.invalid"] == 1
        assert counters["scenario.cache.misses"] == 1
        assert counters["scenario.cache.stores"] == 1
        assert np.array_equal(rerun.nta.ts, tiny_result.nta.ts)
        assert cache.load(TINY) is not None  # the entry was repaired


class TestSizeAccounting:
    def test_total_bytes_matches_du_of_the_cache_dir(self, warm_cache,
                                                     tmp_path):
        warm_cache.pin(warm_cache.key(TINY))  # pins.json counts too
        expected = 0
        for dirpath, _dirs, files in os.walk(tmp_path):
            for name in files:
                expected += os.lstat(os.path.join(dirpath, name)).st_size
        assert warm_cache.total_bytes() == expected
        assert expected > 0

    def test_entry_rows_carry_sizes_and_pins(self, warm_cache):
        key = warm_cache.pin(TINY)
        rows = warm_cache.entries()
        assert [row.key for row in rows] == [key]
        assert rows[0].pinned
        assert rows[0].bytes == sum(
            p.stat().st_size for p in _entry_files(rows[0].path))

    def test_empty_cache_accounts_zero(self, tmp_path):
        cache = ScenarioCache(tmp_path / "nothing-here")
        assert cache.total_bytes() == 0
        assert cache.entries() == []


def _store_three(tmp_path, tiny_result, monkeypatch):
    """Three entries with distinct keys and controlled LRU order (oldest
    first: v1 < v2 < v3), without paying for three simulations: the key
    embeds the package version, so monkeypatching it makes the one frozen
    result land under three distinct keys."""
    cache = ScenarioCache(tmp_path, max_bytes=None)
    keys = []
    for i, version in enumerate(("v1-test", "v2-test", "v3-test")):
        monkeypatch.setattr("repro.__version__", version)
        entry = cache.store(tiny_result)
        keys.append(entry.name)
        stamp = 1_000_000 + i * 1000
        os.utime(entry, (stamp, stamp))
    monkeypatch.undo()
    return cache, keys


class TestEviction:
    def test_lru_entry_goes_first_and_recency_is_refreshed(
            self, tmp_path, tiny_result, monkeypatch):
        cache, keys = _store_three(tmp_path, tiny_result, monkeypatch)
        per_entry = cache.entries()[0].bytes
        # Budget for two entries: the LRU one must go.  Touch v1 (the
        # oldest) first — recency protection must follow use, not age.
        cache.max_bytes = 2 * per_entry + per_entry // 2
        os.utime(tmp_path / keys[0], None)  # v1 freshly used
        evicted = cache.evict()
        assert evicted == [keys[1]]  # v2 became least recently used
        assert sorted(p.name for p in tmp_path.iterdir()
                      if p.is_dir()) == sorted([keys[0], keys[2]])

    def test_pinned_entry_survives_over_budget_sweep(
            self, tmp_path, tiny_result, monkeypatch):
        cache, keys = _store_three(tmp_path, tiny_result, monkeypatch)
        cache.max_bytes = 0  # sweep everything it is allowed to
        cache.pin(keys[0])
        registry = MetricsRegistry()
        with use_registry(registry):
            evicted = cache.evict()
        assert evicted == [keys[1], keys[2]]  # oldest-first, pins skipped
        assert (tmp_path / keys[0]).is_dir()
        assert (tmp_path / PINS_FILE).is_file()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["scenario.cache.evictions"] == 2
        assert snapshot["gauges"]["scenario.cache.bytes"] == \
            cache.total_bytes()
        # Idempotent: nothing further to remove.
        assert cache.evict() == []

    def test_in_flight_protection_survives_sweep(self, tmp_path,
                                                 tiny_result, monkeypatch):
        cache, keys = _store_three(tmp_path, tiny_result, monkeypatch)
        cache.max_bytes = 0
        evicted = cache.evict(protect={keys[1]})
        assert keys[1] not in evicted
        assert (tmp_path / keys[1]).is_dir()
        assert sorted(evicted) == sorted([keys[0], keys[2]])

    def test_no_budget_means_no_eviction(self, tmp_path, tiny_result,
                                         monkeypatch):
        cache, keys = _store_three(tmp_path, tiny_result, monkeypatch)
        assert cache.max_bytes is None
        assert cache.evict() == []
        assert all((tmp_path / key).is_dir() for key in keys)


class TestPins:
    def test_pin_unpin_roundtrip(self, warm_cache):
        key = warm_cache.pin(TINY)
        assert warm_cache.pinned() == {key}
        warm_cache.pin("another-key")
        assert warm_cache.pinned() == {key, "another-key"}
        warm_cache.unpin(TINY)
        assert warm_cache.pinned() == {"another-key"}
        warm_cache.unpin("never-pinned")  # no-op, no error
        assert warm_cache.pinned() == {"another-key"}

    def test_garbage_pin_file_reads_as_no_pins(self, warm_cache, tmp_path):
        (tmp_path / PINS_FILE).write_text("{definitely not json")
        assert warm_cache.pinned() == set()
