"""Shared fixtures.

The full-scenario fixture is session-scoped: integration tests and
experiment tests share one (small) simulated deployment.
"""

import numpy as np
import pytest

from repro.sim import ScenarioConfig, run_scenario


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_result():
    """A compact but complete scenario run: all 27 honeyprefixes, every
    trigger (TLS, hitlist, withdrawal) inside the horizon."""
    config = ScenarioConfig(
        seed=7,
        duration_days=80,
        volume_scale=1e-4,
        n_tail=80,
        phase1_day=8,
        phase2_day=12,
        phase3_day=16,
        specific_start_day=20,
        tls_offset_days=8,
        tpot_hitlist_offset_days=14,
        tpot_tls_offset_days=24,
        udp_hitlist_offset_days=5,
        withdraw_after_days=40,
    )
    return run_scenario(config)
