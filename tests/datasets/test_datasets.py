"""Tests for the metadata datasets."""

import pytest

from repro.datasets.asdb import AsCategory, AsDatabase, AsRecord
from repro.datasets.geodb import GeoDatabase
from repro.datasets.prefix2as import Prefix2As
from repro.net.addr import IPv6Prefix, parse_address


class TestAsDatabase:
    def test_register_and_lookup(self):
        db = AsDatabase(misclassification_rate=0.0)
        db.register(AsRecord(64500, "TEST", AsCategory.ISP_TELECOM, "US"))
        assert 64500 in db
        assert db.name(64500) == "TEST"
        assert db.classify(64500) is AsCategory.ISP_TELECOM
        assert db.true_category(64500) is AsCategory.ISP_TELECOM

    def test_unknown_asn(self):
        db = AsDatabase()
        assert db.name(99) == "AS99"
        assert db.classify(99) is AsCategory.OTHER
        assert db.record(99) is None

    def test_duplicate_rejected(self):
        db = AsDatabase()
        db.register(AsRecord(1, "A", AsCategory.OTHER, "US"))
        with pytest.raises(ValueError):
            db.register(AsRecord(1, "B", AsCategory.OTHER, "US"))

    def test_override_wins(self):
        db = AsDatabase(misclassification_rate=0.0)
        db.register(AsRecord(1, "A", AsCategory.HOSTING_CLOUD, "US"))
        db.override(1, AsCategory.INTERNET_SCANNER)
        assert db.classify(1) is AsCategory.INTERNET_SCANNER
        assert db.true_category(1) is AsCategory.HOSTING_CLOUD

    def test_misclassification_is_stable(self):
        db = AsDatabase(misclassification_rate=1.0, rng=0)
        db.register(AsRecord(1, "A", AsCategory.HOSTING_CLOUD, "US"))
        first = db.classify(1)
        assert first is not AsCategory.HOSTING_CLOUD
        assert all(db.classify(1) is first for _ in range(5))

    def test_misclassification_rate_zero(self):
        db = AsDatabase(misclassification_rate=0.0, rng=0)
        for asn in range(1, 50):
            db.register(AsRecord(asn, f"A{asn}", AsCategory.CDN, "US"))
        assert all(db.classify(a) is AsCategory.CDN for a in range(1, 50))

    def test_record_validation(self):
        with pytest.raises(ValueError):
            AsRecord(0, "A", AsCategory.OTHER, "US")
        with pytest.raises(ValueError):
            AsRecord(1, "A", AsCategory.OTHER, "USA")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            AsDatabase(misclassification_rate=1.5)


class TestGeoDatabase:
    def test_lpm_lookup(self):
        db = GeoDatabase()
        db.add(IPv6Prefix.parse("2001:db8::/32"), "de")
        db.add(IPv6Prefix.parse("2001:db8:5::/48"), "US")
        assert db.lookup(parse_address("2001:db8:5::1")) == "US"
        assert db.lookup(parse_address("2001:db8:6::1")) == "DE"
        assert db.lookup(parse_address("2002::1")) is None

    def test_date_gating(self):
        db = GeoDatabase()
        db.add(IPv6Prefix.parse("2001:db8::/32"), "DE", valid_from=100.0)
        addr = parse_address("2001:db8::1")
        assert db.lookup(addr, at=50.0) is None
        assert db.lookup(addr, at=150.0) == "DE"

    def test_rejects_bad_country(self):
        with pytest.raises(ValueError):
            GeoDatabase().add(IPv6Prefix.parse("::/0"), "DEU")

    def test_len(self):
        db = GeoDatabase()
        db.add(IPv6Prefix.parse("2001:db8::/32"), "DE")
        assert len(db) == 1


class TestPrefix2As:
    def test_lpm_lookup(self):
        p2a = Prefix2As()
        p2a.add(IPv6Prefix.parse("2001:db8::/32"), 64500)
        p2a.add(IPv6Prefix.parse("2001:db8:5::/48"), 64501)
        assert p2a.lookup(parse_address("2001:db8:5::1")) == 64501
        assert p2a.lookup(parse_address("2001:db8:6::1")) == 64500
        assert p2a.lookup(parse_address("2002::1")) is None

    def test_date_gating(self):
        p2a = Prefix2As()
        p2a.add(IPv6Prefix.parse("2001:db8::/32"), 64500, valid_from=100.0)
        assert p2a.lookup(parse_address("2001:db8::1"), at=50.0) is None

    def test_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            Prefix2As().add(IPv6Prefix.parse("::/0"), 0)
