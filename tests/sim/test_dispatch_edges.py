"""Routing edges of the scenario dispatchers, scalar and batch alike.

Shared parametrized tests: the live-/48 exclusion inside NT-A's covering
/32, unrouted packets, and NT-C's assigned-/33 exclusion must behave
identically whether packets go through the per-packet ``dispatch`` or the
columnar ``dispatch_batch``.
"""

import numpy as np
import pytest

from repro.net.addr import IPv6Prefix
from repro.net.batch import PacketBatch
from repro.net.packet import icmp_echo_request
from repro.sim.scenario import PaperScenario, ScenarioConfig

SRC = IPv6Prefix.parse("2620:96::/32").network | 0x42


@pytest.fixture(scope="module")
def scenario():
    return PaperScenario(ScenarioConfig(
        seed=5, duration_days=10, volume_scale=1e-4, n_tail=5,
        include_sweeper=False,
    ))


def _send(scenario, dispatcher, addresses):
    packets = [icmp_echo_request(float(i), SRC, dst)
               for i, dst in enumerate(addresses)]
    if dispatcher == "scalar":
        for pkt in packets:
            scenario.dispatch(pkt)
    else:
        scenario.dispatch_batch(PacketBatch.from_packets(packets))


@pytest.fixture(params=["scalar", "batch"])
def dispatcher(request):
    return request.param


class TestLiveSlash48Exclusion:
    def test_live_prefixes_dropped_and_not_captured(self, scenario,
                                                    dispatcher):
        before = scenario.counters.live_dropped
        captured = len(scenario.telescope.capturer)
        _send(scenario, dispatcher,
              [p.network | 7 for p in scenario.live_prefixes])
        assert (scenario.counters.live_dropped - before
                == len(scenario.live_prefixes))
        assert len(scenario.telescope.capturer) == captured

    def test_dark_48_next_to_live_is_captured(self, scenario, dispatcher):
        before = scenario.counters.nta
        captured = len(scenario.telescope.capturer)
        # /48 index 5: first non-live slot of the covering /32.
        dark = scenario.nta_covering.subnet_at(5, 48).network | 7
        _send(scenario, dispatcher, [dark])
        assert scenario.counters.nta == before + 1
        assert len(scenario.telescope.capturer) == captured + 1


class TestUnrouted:
    def test_unrouted_counted_nothing_captured(self, scenario, dispatcher):
        before = scenario.counters.unrouted
        captured = (len(scenario.telescope.capturer)
                    + len(scenario.ntb_capturer)
                    + len(scenario.ntc_capturer))
        _send(scenario, dispatcher,
              [IPv6Prefix.parse("2400:cb00::/32").network | 1])
        assert scenario.counters.unrouted == before + 1
        assert (len(scenario.telescope.capturer)
                + len(scenario.ntb_capturer)
                + len(scenario.ntc_capturer)) == captured


class TestNtcAssignedExclusion:
    def test_assigned_33_counted_but_not_captured(self, scenario, dispatcher):
        """The university's assigned top /33 reaches NT-C's tap (the ntc
        dispatch counter) but never its capture — it is production space."""
        before_ntc = scenario.counters.ntc
        ignored = scenario.ntc.ignored_count
        captured = len(scenario.ntc_capturer)
        assigned = scenario.ntc_prefix.subnet_at(1, 33).network | 9
        _send(scenario, dispatcher, [assigned])
        assert scenario.counters.ntc == before_ntc + 1
        assert scenario.ntc.ignored_count == ignored + 1
        assert len(scenario.ntc_capturer) == captured

    def test_dark_33_captured(self, scenario, dispatcher):
        before = scenario.ntc.captured_count
        captured = len(scenario.ntc_capturer)
        dark = scenario.ntc_prefix.subnet_at(0, 33).network | 9
        _send(scenario, dispatcher, [dark])
        assert scenario.ntc.captured_count == before + 1
        assert len(scenario.ntc_capturer) == captured + 1


class TestNtb:
    def test_ntb_captures_whole_48(self, scenario, dispatcher):
        before = scenario.counters.ntb
        captured = len(scenario.ntb_capturer)
        _send(scenario, dispatcher, [scenario.ntb_prefix.network | 3])
        assert scenario.counters.ntb == before + 1
        assert len(scenario.ntb_capturer) == captured + 1


class TestPathAgreement:
    def test_both_paths_route_a_mixed_burst_identically(self, scenario):
        """One mixed burst through each dispatcher: every counter moves by
        the same amount."""
        addresses = (
            [p.network | 1 for p in scenario.live_prefixes[:2]]
            + [scenario.nta_covering.subnet_at(6, 48).network | 1]
            + [scenario.ntb_prefix.network | 1]
            + [scenario.ntc_prefix.subnet_at(0, 33).network | 1]
            + [scenario.ntc_prefix.subnet_at(1, 33).network | 1]
            + [IPv6Prefix.parse("2a00:1450::/32").network | 1]
        )
        import copy

        start = copy.copy(scenario.counters)
        _send(scenario, "scalar", addresses)
        after_scalar = copy.copy(scenario.counters)
        _send(scenario, "batch", addresses)
        after_batch = scenario.counters
        for name in ("nta", "ntb", "ntc", "live_dropped", "unrouted"):
            scalar_delta = getattr(after_scalar, name) - getattr(start, name)
            batch_delta = (getattr(after_batch, name)
                           - getattr(after_scalar, name))
            assert scalar_delta == batch_delta, name
