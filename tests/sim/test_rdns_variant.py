"""The H_RDNS variant (§4.3.4): reverse-DNS records as an attraction signal."""

import pytest

from repro.core.features import Feature
from repro.sim import PaperScenario, ScenarioConfig


@pytest.fixture(scope="module")
def rdns_result():
    config = ScenarioConfig(
        seed=21, duration_days=50, volume_scale=1e-4, n_tail=40,
        include_rdns=True,
        phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
        tls_offset_days=7, tpot_hitlist_offset_days=10,
        tpot_tls_offset_days=16, udp_hitlist_offset_days=4,
        withdraw_after_days=100,
    )
    scenario = PaperScenario(config)
    scenario.run()
    return scenario


def test_rdns_prefix_deployed(rdns_result):
    assert len(rdns_result.honeyprefixes) == 28
    hp = rdns_result.honeyprefixes["H_RDNS"]
    assert hp.config.rdns


def test_ptr_records_installed(rdns_result):
    hp = rdns_result.honeyprefixes["H_RDNS"]
    zone = rdns_result.fabric.reverse_zone
    for addr in hp.icmp_addresses():
        assert zone.lookup_ptr(addr, at=1e9)


def test_walker_watches_covering_prefix(rdns_result):
    from repro.scanners.strategies import RdnsWalkerStrategy

    walkers = [
        strategy
        for agent in rdns_result.agents
        for strategy in agent.strategies
        if isinstance(strategy, RdnsWalkerStrategy)
    ]
    assert walkers
    assert any(rdns_result.nta_covering in w.watched for w in walkers)


def test_rdns_hosts_probed(rdns_result):
    """The ip6.arpa walker finds the PTR'd hosts and probes them."""
    hp = rdns_result.honeyprefixes["H_RDNS"]
    records = rdns_result.telescope.capturer.to_records()
    sub = records.select(records.mask_dst_in(hp.prefix))
    assert len(sub) > 0
    probed = sub.destination_set(128)
    assert probed & set(hp.icmp_addresses())
