"""Determinism: identical configs must yield identical worlds.

Reproducibility is a headline property of the library (the paper promises
reproducible tooling); these tests pin it at scenario scale.
"""

import numpy as np
import pytest

from repro.sim import PaperScenario, ScenarioConfig
from repro.sim.cdn import CdnVantage


def _tiny_config(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        seed=seed, duration_days=25, volume_scale=1e-4, n_tail=25,
        phase1_day=4, phase2_day=7, phase3_day=10, specific_start_day=12,
        tls_offset_days=5, tpot_hitlist_offset_days=8,
        tpot_tls_offset_days=12, udp_hitlist_offset_days=3,
        withdraw_after_days=100,
    )


def _run(seed: int):
    scenario = PaperScenario(_tiny_config(seed))
    scenario.run()
    return scenario


class TestScenarioDeterminism:
    def test_same_seed_same_capture(self):
        a = _run(seed=13)
        b = _run(seed=13)
        records_a = a.telescope.capturer.to_records()
        records_b = b.telescope.capturer.to_records()
        assert len(records_a) == len(records_b)
        assert np.array_equal(records_a.ts, records_b.ts)
        assert np.array_equal(records_a.src_hi, records_b.src_hi)
        assert np.array_equal(records_a.dst_lo, records_b.dst_lo)
        assert np.array_equal(records_a.proto, records_b.proto)

    def test_same_seed_same_placement_and_timeline(self):
        a = _run(seed=13)
        b = _run(seed=13)
        for name in a.honeyprefixes:
            hp_a, hp_b = a.honeyprefixes[name], b.honeyprefixes[name]
            assert hp_a.prefix == hp_b.prefix
            assert hp_a.timeline == hp_b.timeline
            assert hp_a.responsive == hp_b.responsive

    def test_different_seed_different_capture(self):
        a = _run(seed=13)
        b = _run(seed=14)
        records_a = a.telescope.capturer.to_records()
        records_b = b.telescope.capturer.to_records()
        assert (len(records_a) != len(records_b)
                or not np.array_equal(records_a.ts, records_b.ts))


class TestCdnDeterminism:
    def test_same_seed_same_events(self):
        a = CdnVantage(rng=3, n_weeks=30)
        b = CdnVantage(rng=3, n_weeks=30)
        totals_a, _ = a.weekly_packets()
        totals_b, _ = b.weekly_packets()
        assert np.array_equal(totals_a, totals_b)

    def test_different_seed_differs(self):
        a = CdnVantage(rng=3, n_weeks=30)
        b = CdnVantage(rng=4, n_weeks=30)
        assert not np.array_equal(a.weekly_packets()[0],
                                  b.weekly_packets()[0])
