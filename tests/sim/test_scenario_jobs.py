"""Intra-scenario sharding and day pipelining: byte-identity vs. serial.

One scenario run with ``jobs > 1`` shards its agents across replicated
worker processes (:mod:`repro.exec.shard`); ``pipeline=True`` overlaps
emission and dispatch on a second thread.  Both must leave *no trace* in
the outputs: capture records, ground truth, dispatch counters, and the
journal byte stream are asserted identical to the serial run for every
mode — the same contract the experiment pool upholds across runs, pushed
down inside one.
"""

import io

import numpy as np
import pytest

from repro.exec.shard import shard_indices
from repro.obs import Journal, use_journal
from repro.sim import ScenarioConfig, run_scenario
from repro.sim.scenario import PaperScenario

DAYS = 10

COLUMNS = ("ts", "src_hi", "src_lo", "dst_hi", "dst_lo",
           "proto", "sport", "dport")


def _config(**overrides):
    base = dict(seed=19, duration_days=DAYS, volume_scale=1e-4, n_tail=20,
                phase1_day=2, phase2_day=4, phase3_day=6,
                specific_start_day=7, withdraw_after_days=5)
    base.update(overrides)
    return ScenarioConfig(**base)


def _run(config, **kwargs):
    buffer = io.StringIO()
    with use_journal(Journal(buffer)):
        result = run_scenario(config, **kwargs)
    return result, buffer.getvalue()


def _assert_identical(a, b):
    for name in ("nta", "ntb", "ntc"):
        ra, rb = getattr(a, name), getattr(b, name)
        assert len(ra) == len(rb), name
        for column in COLUMNS:
            assert np.array_equal(getattr(ra, column),
                                  getattr(rb, column)), (name, column)
    for name, ta in a.truth.items():
        tb = b.truth[name]
        assert np.array_equal(ta.origin, tb.origin), name
    ca, cb = a.scenario.counters, b.scenario.counters
    assert (ca.nta, ca.ntb, ca.ntc, ca.live_dropped, ca.unrouted) \
        == (cb.nta, cb.ntb, cb.ntc, cb.live_dropped, cb.unrouted)


@pytest.fixture(scope="module")
def serial():
    return _run(_config())


class TestShardIndices:
    def test_partition_is_exact(self):
        for jobs in (2, 3, 4, 7):
            owned = [set(shard_indices(23, shard, jobs))
                     for shard in range(jobs)]
            union = set().union(*owned)
            assert union == set(range(23))
            assert sum(len(s) for s in owned) == 23


class TestShardedEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_byte_identical_to_serial(self, serial, jobs):
        serial_result, serial_journal = serial
        sharded, journal = _run(_config(), jobs=jobs)
        _assert_identical(serial_result, sharded)
        assert journal == serial_journal

    def test_sharding_requires_batch_path(self):
        with pytest.raises(ValueError, match="batch"):
            run_scenario(_config(use_batch_path=False), jobs=2)

    def test_same_day_withdrawals_keep_event_order(self, serial):
        """Two honeyprefixes withdrawing on the *same day* is the journal
        merge's hard case: their session_cancel records must interleave by
        engine-event order, not by agent index.  The fixture config fires
        H_BGP2's and H_BGP3's withdrawals in one day (deploys 0.2 days
        apart, same withdraw offset), so the byte-compare above already
        covers it — this test pins the precondition so a config change
        cannot silently drop the case."""
        _, serial_journal = serial
        import json

        cancel_days = {}
        for line in serial_journal.splitlines():
            record = json.loads(line)
            if record["type"] == "session_cancel":
                cancel_days.setdefault(int(record["at"] // 86400.0),
                                       set()).add(record["prefix"])
        assert any(len(prefixes) > 1 for prefixes in cancel_days.values()), \
            "fixture no longer exercises same-day multi-prefix withdrawal"


class TestPipelineEquivalence:
    def test_pipeline_byte_identical_to_serial(self, serial):
        serial_result, serial_journal = serial
        piped, journal = _run(_config(), pipeline=True)
        _assert_identical(serial_result, piped)
        assert journal == serial_journal

    def test_pipeline_requires_batch_path(self):
        from repro.sim.pipeline import DispatchPipeline

        scenario = PaperScenario(_config(use_batch_path=False,
                                         duration_days=1))
        with pytest.raises(ValueError, match="batch"):
            DispatchPipeline(scenario)

    def test_pipeline_propagates_dispatch_errors(self):
        from repro.sim.pipeline import DispatchPipeline

        scenario = PaperScenario(_config(duration_days=2))
        pipe = DispatchPipeline(scenario)

        def boom(_batch):
            raise RuntimeError("dispatch exploded")

        scenario.dispatch_batch = boom
        try:
            with pytest.raises(RuntimeError, match="dispatch exploded"):
                pipe.run_day(0)
                pipe.drain()
        finally:
            pipe.close()
