"""Tests for the event engine and the Internet fabric."""

import pytest

from repro._util import DAY
from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6
from repro.sim.engine import Engine
from repro.sim.fabric import InternetFabric


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9.0
        assert engine.processed == 3

    def test_ties_run_in_schedule_order(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(1.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_run_until(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(5.0, lambda: order.append(5))
        assert engine.run_until(3.0) == 1
        assert engine.now == 3.0
        assert order == [1]

    def test_profile_empty_when_metrics_disabled(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None, label="tick")
        engine.run()
        assert engine.profile == {}

    def test_profile_counts_and_times_by_label(self):
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as registry:
            engine = Engine()
            engine.schedule(1.0, lambda: None, label="tick")
            engine.schedule(2.0, lambda: None, label="tick")
            engine.schedule(3.0, lambda: None)
            engine.run()
        assert set(engine.profile) == {"tick", "(unlabeled)"}
        count, seconds = engine.profile["tick"]
        assert count == 2 and seconds >= 0.0
        assert registry.counter("engine.events").value == 3
        assert registry.counter("engine.events.tick").value == 2
        assert registry.timing("engine.event.tick").count == 2

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule(1.0, lambda: None)

    def test_schedule_in(self):
        engine = Engine(start_time=10.0)
        fired = []
        engine.schedule_in(5.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [15.0]
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        engine = Engine()
        order = []

        def chain():
            order.append("first")
            engine.schedule_in(1.0, lambda: order.append("second"))

        engine.schedule(1.0, chain)
        engine.run()
        assert order == ["first", "second"]

    def test_peek(self):
        engine = Engine()
        assert engine.peek_time() is None
        engine.schedule(3.0, lambda: None)
        assert engine.peek_time() == 3.0


class TestFabric:
    def test_constructs_all_substrates(self):
        fabric = InternetFabric(rng=0)
        assert len(fabric.collectors.collectors) == 36
        assert set(fabric.registrar.tlds) == {"com", "net", "org"}
        assert fabric.ca.ct_logs == [fabric.ct_log]

    def test_oracle_dispatch(self):
        fabric = InternetFabric(rng=0)
        fabric.register_oracle(lambda a, p, q, t: a == 42)
        assert fabric._dispatch_oracle(42, ICMPV6, None, 0.0)
        assert not fabric._dispatch_oracle(43, ICMPV6, None, 0.0)

    def test_interaction_dispatch_takes_max(self):
        fabric = InternetFabric(rng=0)
        fabric.register_interaction(lambda a, t: 1)
        fabric.register_interaction(lambda a, t: 2)
        assert fabric.interaction_level(1, 0.0) == 2

    def test_zone_candidates_only_roots(self):
        fabric = InternetFabric(rng=0)
        fabric.registrar.register_domain("bait.com", at=100.0)
        fabric.registrar.set_aaaa("bait.com", 11, at=100.0)
        fabric.registrar.set_aaaa("www.bait.com", 22, at=100.0)
        candidates = set(fabric._zone_candidates(0.0, 2 * DAY))
        assert candidates == {11}  # subdomains are NOT in TLD zone files

    def test_ct_candidates(self):
        fabric = InternetFabric(rng=0)
        fabric.registrar.register_domain("bait.com", at=0.0)
        fabric.registrar.set_aaaa("www.bait.com", 22, at=0.0)
        fabric.ca.issue(["www.bait.com"], at=100.0)
        assert set(fabric._ct_candidates(0.0, 200.0)) == {22}

    def test_announced_prefix_source(self):
        from repro.routing.messages import Announcement

        fabric = InternetFabric(rng=0)
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        fabric.collectors.announce(Announcement(prefix, 64500, 100.0,
                                                (64500,)))
        assert prefix in fabric._announced_prefixes(0.0, 1e6)
