"""Integration tests over the shared small scenario run.

These exercise the whole stack: fabric, population, telescope, triggers,
capture, and the result bundle.  The heavy lifting happens once in the
session-scoped ``small_result`` fixture.
"""

import numpy as np
import pytest

from repro._util import DAY
from repro.core.features import Feature
from repro.net.packet import ICMPV6


class TestDeployment:
    def test_all_honeyprefixes_deployed(self, small_result):
        assert len(small_result.honeyprefixes) == 27

    def test_honeyprefixes_in_upper_half(self, small_result):
        covering = small_result.scenario.nta_covering
        half = covering.network | (1 << 95)
        for hp in small_result.honeyprefixes.values():
            assert hp.prefix.network >= half

    def test_bgp_recorded_for_announced(self, small_result):
        for name, hp in small_result.honeyprefixes.items():
            if hp.config.announce_fails:
                assert hp.feature_time(Feature.BGP) is None
            else:
                assert hp.feature_time(Feature.BGP) is not None

    def test_triggers_fired(self, small_result):
        tpot = small_result.honeyprefixes["H_TPot1"]
        assert tpot.feature_time(Feature.HITLIST) is not None
        assert tpot.feature_time(Feature.TLS_ROOT) is not None
        assert (tpot.feature_time(Feature.TLS_ROOT)
                > tpot.feature_time(Feature.HITLIST))

    def test_withdrawal_happened(self, small_result):
        assert small_result.honeyprefixes["H_BGP2"].withdrawn_at is not None
        assert small_result.honeyprefixes["H_BGP3"].withdrawn_at is not None
        assert small_result.honeyprefixes["H_BGP1"].withdrawn_at is None


class TestTraffic:
    def test_all_telescopes_captured(self, small_result):
        assert len(small_result.nta) > 1000
        assert len(small_result.ntc) > 100
        assert len(small_result.ntb) >= 0

    def test_nta_dominates(self, small_result):
        assert len(small_result.nta) > len(small_result.ntc)
        assert len(small_result.ntc) > len(small_result.ntb)

    def test_icmp_dominates(self, small_result):
        icmp = int(small_result.nta.mask_proto(ICMPV6).sum())
        assert icmp / len(small_result.nta) > 0.7

    def test_live_prefixes_not_captured(self, small_result):
        for live in small_result.scenario.live_prefixes:
            assert int(small_result.nta.mask_dst_in(live).sum()) == 0

    def test_most_traffic_hits_honeyprefixes(self, small_result):
        total = 0
        for hp in small_result.honeyprefixes.values():
            total += int(small_result.nta.mask_dst_in(hp.prefix).sum())
        assert total / len(small_result.nta) > 0.9

    def test_announcement_precedes_traffic(self, small_result):
        hp = small_result.honeyprefixes["H_Alias"]
        records = small_result.honeyprefix_records("H_Alias")
        assert len(records) > 0
        assert float(records.ts.min()) >= hp.feature_time(Feature.BGP)


class TestHoneypotInteraction:
    def test_twinklenet_responded(self, small_result):
        assert small_result.scenario.telescope.response_count > 0

    def test_tpot_nat_log_populated(self, small_result):
        gateways = small_result.scenario.telescope.gateways
        assert any(g.nat_log for g in gateways.values())

    def test_hitlist_published_entries(self, small_result):
        entries = small_result.scenario.fabric.hitlist.entries()
        assert len(entries) > 10
        assert any(e.manual for e in entries)

    def test_certificates_issued_and_logged(self, small_result):
        log = small_result.scenario.fabric.ct_log
        assert len(log) > 50


class TestResultBundle:
    def test_control_records_not_honeyprefix(self, small_result):
        control = small_result.control_records()
        honey_nets = {hp.prefix.network
                      for hp in small_result.honeyprefixes.values()}
        if len(control):
            dsts = {(d >> 80) << 80 for d in control.dst_addresses()}
            assert len(dsts) == 1
            assert not dsts & honey_nets

    def test_honeyprefix_records_scoped(self, small_result):
        records = small_result.honeyprefix_records("H_TPot1")
        hp = small_result.honeyprefixes["H_TPot1"]
        assert all(d in hp.prefix for d in records.dst_addresses())

    def test_telescopes_mapping(self, small_result):
        scopes = small_result.telescopes()
        assert set(scopes) == {"NT-A", "NT-B", "NT-C"}

    def test_joiner_resolves_most_sources(self, small_result):
        asns = small_result.joiner.row_asns(small_result.nta)
        assert np.mean(asns > 0) > 0.95


class TestRetractionBehavior:
    def test_scanning_dies_after_withdrawal(self, small_result):
        hp = small_result.honeyprefixes["H_BGP2"]
        records = small_result.honeyprefix_records("H_BGP2")
        w = hp.withdrawn_at
        before = records.select(records.mask_time(w - 7 * DAY, w))
        after = records.select(records.mask_time(w + 2 * DAY, w + 9 * DAY))
        assert len(before) > 0
        assert len(after) < len(before) * 0.2
