"""Streaming scenario runs: incremental detection equals batch analysis.

``run_scenario(stream_analysis=True)`` analyzes each day's captures
online and releases them; its event lists must be element-identical to
running :func:`~repro.analysis.scandetect.detect_scans` over a batch
run's records — serially, sharded (``jobs=2``), and across a
kill-and-resume whose checkpoint carries open sessions over the boundary.
"""

import io

import numpy as np
import pytest

from repro.analysis.scandetect import detect_scans, detect_scans_reference
from repro.exec.freeze import load_checkpoint
from repro.obs import Journal, MetricsRegistry, use_journal, use_registry
from repro.sim import ScenarioConfig, SimulationAborted, run_scenario

DAYS = 12
CADENCE = 4
LEVELS = (128, 64, 48)


def _config():
    return ScenarioConfig(seed=19, duration_days=DAYS, volume_scale=1e-4,
                          n_tail=20, phase1_day=2, phase2_day=4,
                          phase3_day=6, specific_start_day=7,
                          withdraw_after_days=5)


def _stream_run(**kwargs):
    buffer = io.StringIO()
    with use_journal(Journal(buffer)):
        result = run_scenario(_config(), stream_analysis=True, **kwargs)
    return result, buffer.getvalue()


def _assert_same_events(a, b):
    for name in ("NT-A", "NT-B", "NT-C"):
        assert a.streaming[name].records_in == b.streaming[name].records_in
        for level in LEVELS:
            assert a.streaming[name].events[level] == \
                b.streaming[name].events[level], (name, level)


@pytest.fixture(scope="module")
def batch():
    return run_scenario(_config())


@pytest.fixture(scope="module")
def stream():
    return _stream_run()


class TestStreamingEqualsBatch:
    def test_events_identical_at_every_level(self, batch, stream):
        result, _ = stream
        for name, records in batch.telescopes().items():
            summary = result.streaming[name]
            assert summary.records_in == len(records)
            for level in LEVELS:
                expect = detect_scans(records, source_length=level)
                assert summary.events[level] == expect, (name, level)

    def test_matches_per_packet_reference(self, batch, stream):
        result, _ = stream
        records = batch.nta
        assert result.streaming["NT-A"].events[64] == \
            detect_scans_reference(records, 64, 100, 3600.0)

    def test_streaming_run_retains_no_records(self, stream):
        result, _ = stream
        assert len(result.nta) == len(result.ntb) == len(result.ntc) == 0
        assert result.truth == {}

    def test_journal_has_stream_detection_per_telescope_day(self, stream):
        _, journal = stream
        lines = [line for line in journal.splitlines()
                 if '"stream_detection"' in line]
        assert len(lines) == 3 * DAYS

    def test_sharded_streaming_identical(self, stream):
        serial_result, serial_journal = stream
        sharded, journal = _stream_run(jobs=2)
        _assert_same_events(serial_result, sharded)
        assert journal == serial_journal


class TestStreamingCheckpoint:
    def test_kill_and_resume_carries_open_sessions(self, stream, tmp_path):
        base, base_journal = stream
        with pytest.raises(SimulationAborted):
            _stream_run(checkpoint_dir=tmp_path, checkpoint_every=CADENCE,
                        abort_after_day=5)
        checkpoint = load_checkpoint(tmp_path, _config())
        assert checkpoint is not None
        assert checkpoint.streaming is not None
        carried = sum(a.open_sessions
                      for a in checkpoint.streaming.values())
        assert carried > 0  # sessions genuinely cross the boundary
        resumed, journal = _stream_run(checkpoint_dir=tmp_path,
                                       checkpoint_every=CADENCE,
                                       resume=True)
        _assert_same_events(base, resumed)

    def test_resumed_equals_uninterrupted_with_checkpointing(self, tmp_path):
        base, base_journal = _stream_run(
            checkpoint_dir=tmp_path / "base", checkpoint_every=CADENCE)
        with pytest.raises(SimulationAborted):
            _stream_run(checkpoint_dir=tmp_path / "kill",
                        checkpoint_every=CADENCE, abort_after_day=5)
        resumed, journal = _stream_run(checkpoint_dir=tmp_path / "kill",
                                       checkpoint_every=CADENCE,
                                       resume=True)
        _assert_same_events(base, resumed)
        assert journal == base_journal

    def test_cross_mode_resume_rejected(self, tmp_path):
        with pytest.raises(SimulationAborted):
            _stream_run(checkpoint_dir=tmp_path, checkpoint_every=CADENCE,
                        abort_after_day=5)
        with pytest.raises(ValueError, match="stream_analysis"):
            run_scenario(_config(), checkpoint_dir=tmp_path,
                         checkpoint_every=CADENCE, resume=True)

    def test_batch_checkpoint_rejected_by_streaming_resume(self, tmp_path):
        with use_journal(Journal(io.StringIO())):
            with pytest.raises(SimulationAborted):
                run_scenario(_config(), checkpoint_dir=tmp_path,
                             checkpoint_every=CADENCE, abort_after_day=5)
        with pytest.raises(ValueError, match="batch-mode"):
            run_scenario(_config(), stream_analysis=True,
                         checkpoint_dir=tmp_path, checkpoint_every=CADENCE,
                         resume=True)


class TestSpillRun:
    def test_forced_spill_byte_identical_to_batch(self, batch, tmp_path):
        spilled = run_scenario(_config(), spill_dir=tmp_path,
                               spill_budget_bytes=2048)
        for name, records in batch.telescopes().items():
            other = spilled.telescopes()[name]
            assert len(records) == len(other)
            for col in ("ts", "src_hi", "src_lo", "dst_hi", "dst_lo",
                        "proto", "sport", "dport"):
                assert np.array_equal(getattr(records, col),
                                      getattr(other, col)), (name, col)
        for name, truth in batch.truth.items():
            assert np.array_equal(truth.origin, spilled.truth[name].origin)


class TestModeGuards:
    def test_stream_rejects_cache(self, tmp_path):
        with pytest.raises(ValueError, match="cache"):
            run_scenario(_config(), stream_analysis=True,
                         cache_dir=tmp_path)

    def test_spill_rejects_checkpoint(self, tmp_path):
        with pytest.raises(ValueError, match="spill"):
            run_scenario(_config(), spill_dir=tmp_path / "s",
                         checkpoint_dir=tmp_path / "c")

    def test_spill_rejects_stream(self, tmp_path):
        with pytest.raises(ValueError, match="spill"):
            run_scenario(_config(), stream_analysis=True,
                         spill_dir=tmp_path)


class TestPeakRssGauge:
    def test_stage_gauges_in_telemetry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            result = run_scenario(ScenarioConfig(
                seed=19, duration_days=3, volume_scale=1e-4, n_tail=20))
        gauges = result.telemetry["gauges"]
        assert gauges["process.peak_rss_bytes"] > 0
        for stage in ("build", "run", "freeze"):
            assert gauges[f"process.peak_rss_bytes.{stage}"] > 0
