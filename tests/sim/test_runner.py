"""Tests for the scenario runner result bundle (`repro.sim.runner`).

`ScenarioResult.control_records` is vectorized over the `dst_hi` column;
it must match the retained per-packet `control_records_reference` exactly
— on randomized workloads and on the boundary cases the vectorization
could plausibly get wrong: packet-count ties between control /48s,
captures that consist entirely of honeyprefix traffic, and exclusion
prefixes longer than /48 (whose networks can never equal a /48
truncation).  The end of the file runs `run_scenario` on a tiny two-day
configuration to cover the untested top-level path.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro._util import DAY
from repro.analysis.records import PacketRecords
from repro.net.addr import IPv6Prefix
from repro.net.packet import icmp_echo_request
from repro.obs import MetricsRegistry, use_registry
from repro.sim import ScenarioConfig, run_scenario
from repro.sim.runner import ScenarioResult


def _result(nta, honey_prefixes=(), live_prefixes=()):
    """A ScenarioResult over a stub scenario: the control-records methods
    only touch `honeyprefixes` and `live_prefixes`."""
    scenario = SimpleNamespace(
        honeyprefixes={f"H{i}": SimpleNamespace(prefix=p)
                       for i, p in enumerate(honey_prefixes)},
        live_prefixes=list(live_prefixes),
    )
    return ScenarioResult(scenario=scenario, nta=nta,
                          ntb=PacketRecords.empty(),
                          ntc=PacketRecords.empty())


def _records(dsts):
    """One ICMP packet per destination, timestamped in list order."""
    return PacketRecords.from_packets([
        icmp_echo_request(float(i), (0xfc00 << 112) | i, dst)
        for i, dst in enumerate(dsts)
    ])


def _assert_same_records(a: PacketRecords, b: PacketRecords) -> None:
    for col in ("ts", "src_hi", "src_lo", "dst_hi", "dst_lo",
                "proto", "sport", "dport"):
        assert np.array_equal(getattr(a, col), getattr(b, col)), col


def _random_net48(rng) -> int:
    return int(rng.integers(1, 1 << 44)) << 84


class TestControlRecordsEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized(self, seed):
        rng = np.random.default_rng(seed)
        nets = [_random_net48(rng) for _ in range(10)]
        honey = [IPv6Prefix(nets[0], 48), IPv6Prefix(nets[1], 48)]
        live = [IPv6Prefix(nets[2], 48)]
        dsts = [nets[int(rng.integers(len(nets)))]
                | (int(rng.integers(1 << 40)) << 40)
                | int(rng.integers(1 << 40))
                for _ in range(int(rng.integers(50, 300)))]
        result = _result(_records(dsts), honey, live)
        _assert_same_records(result.control_records(),
                             result.control_records_reference())

    def test_tie_broken_by_first_appearance(self):
        """Two control /48s with equal counts: the reference keeps the
        first-seen one (dict insertion order), regardless of numeric
        order — the vectorized path must agree."""
        low, high = (5 << 84), (9 << 84)
        # `high` appears first; both end up with two packets.
        result = _result(_records([high | 1, low | 1, low | 2, high | 2]))
        vec = result.control_records()
        _assert_same_records(vec, result.control_records_reference())
        assert np.all(vec.dst_hi == np.uint64(high >> 64))

    def test_empty_capture(self):
        result = _result(PacketRecords.empty())
        assert len(result.control_records()) == 0
        assert len(result.control_records_reference()) == 0

    def test_all_traffic_in_honeyprefixes(self):
        net = _random_net48(np.random.default_rng(3))
        honey = [IPv6Prefix(net, 48)]
        result = _result(_records([net | i for i in range(20)]), honey)
        assert len(result.control_records()) == 0
        assert len(result.control_records_reference()) == 0

    def test_long_exclusion_prefix_never_matches(self):
        """A /49 network with host-half bits set (H_Specific-style) can
        never equal a /48 truncation and must not disturb the answer."""
        net = 7 << 84
        sub49 = IPv6Prefix(net | (1 << 79), 49)
        with_sub = _result(_records([net | 1, net | 2]), [sub49])
        without = _result(_records([net | 1, net | 2]))
        _assert_same_records(with_sub.control_records(),
                             with_sub.control_records_reference())
        _assert_same_records(with_sub.control_records(),
                             without.control_records())
        assert len(with_sub.control_records()) == 2

    def test_selects_busiest_control_48(self):
        busy, quiet, honey_net = (3 << 84), (4 << 84), (5 << 84)
        dsts = [busy | i for i in range(5)] + [quiet | 1] + \
            [honey_net | i for i in range(50)]
        result = _result(_records(dsts), [IPv6Prefix(honey_net, 48)])
        control = result.control_records()
        assert len(control) == 5
        assert np.all(control.dst_hi == np.uint64(busy >> 64))
        _assert_same_records(control, result.control_records_reference())


class TestScenarioResultAccessors:
    def test_telescopes_keys(self):
        result = _result(PacketRecords.empty())
        scopes = result.telescopes()
        assert list(scopes) == ["NT-A", "NT-B", "NT-C"]
        assert scopes["NT-A"] is result.nta
        assert scopes["NT-B"] is result.ntb
        assert scopes["NT-C"] is result.ntc

    def test_honeyprefix_records_filters_to_prefix(self):
        net, other = (6 << 84), (8 << 84)
        hp = IPv6Prefix(net, 48)
        result = _result(_records([net | 1, other | 1, net | 2]), [hp])
        records = result.honeyprefix_records("H0")
        assert len(records) == 2
        assert np.all(records.dst_hi == np.uint64(net >> 64))
        with pytest.raises(KeyError):
            result.honeyprefix_records("nope")

    def test_telemetry_defaults_empty(self):
        assert _result(PacketRecords.empty()).telemetry == {}


class TestRunScenarioTiny:
    """End-to-end coverage of `run_scenario` on a two-day toy config."""

    @pytest.fixture(scope="class")
    def tiny(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            result = run_scenario(ScenarioConfig(
                seed=1, duration_days=2, volume_scale=1e-5, n_tail=3,
            ))
        return result

    def test_bundle_shape(self, tiny):
        assert isinstance(tiny.nta, PacketRecords)
        assert list(tiny.telescopes()) == ["NT-A", "NT-B", "NT-C"]
        assert tiny.start == 0.0
        assert tiny.end == 2 * DAY
        assert tiny.config.duration_days == 2

    def test_no_honeyprefixes_before_phase1(self, tiny):
        # phase 1 deploys on day 10; a 2-day horizon stays dark.
        assert tiny.honeyprefixes == {}
        assert len(tiny.nta) == 0
        assert len(tiny.control_records()) == 0

    def test_background_radiation_reaches_ntc(self, tiny):
        records = tiny.ntc
        assert len(records) > 0
        assert np.all(records.ts >= 0.0)
        assert np.all(records.ts <= 2 * DAY)

    def test_telemetry_snapshot_attached(self, tiny):
        telemetry = tiny.telemetry
        assert telemetry["counters"]["engine.events"] >= 2
        assert "telescope.NT-C-capture.packets" in telemetry["counters"]
        assert "twinklenet.rx" in telemetry["counters"]
        assert set(telemetry["timings"]) >= {
            "scenario.build", "scenario.run", "scenario.freeze",
        }
        assert telemetry["gauges"]["scenario.records.ntc"] == len(tiny.ntc)

    def test_telemetry_empty_when_disabled(self):
        result = run_scenario(ScenarioConfig(
            seed=1, duration_days=2, volume_scale=1e-5, n_tail=3,
        ))
        assert result.telemetry == {}
