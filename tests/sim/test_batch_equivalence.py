"""Scenario-level contract of the columnar packet path.

Three properties pin the fast path to the reference implementation:

* **count equality** — same seed, both paths emit the *identical* number of
  packets each day (the per-session Poisson draws come from the same
  stream);
* **determinism** — the batch path with the same seed yields bit-identical
  ``PacketRecords`` at every telescope;
* **counter conservation** — every emitted packet lands in exactly one
  dispatch counter, and telescope rx accounting matches the scalar path's
  per-packet bookkeeping.
"""

import numpy as np
import pytest

from repro.sim.scenario import PaperScenario, ScenarioConfig

DAYS = 22


def _config(use_batch, seed=19):
    return ScenarioConfig(
        seed=seed, duration_days=DAYS, volume_scale=1e-4, n_tail=20,
        phase1_day=4, phase2_day=7, phase3_day=10, specific_start_day=12,
        tls_offset_days=5, tpot_hitlist_offset_days=8,
        tpot_tls_offset_days=12, udp_hitlist_offset_days=3,
        withdraw_after_days=9, use_batch_path=use_batch,
    )


def _run(use_batch, seed=19):
    scenario = PaperScenario(_config(use_batch, seed))
    per_day = [scenario.run_day(day) for day in range(DAYS)]
    return scenario, per_day


@pytest.fixture(scope="module")
def runs():
    scalar, scalar_days = _run(use_batch=False)
    batch, batch_days = _run(use_batch=True)
    return scalar, scalar_days, batch, batch_days


class TestCountEquality:
    def test_per_day_emitted_identical(self, runs):
        _, scalar_days, _, batch_days = runs
        assert scalar_days == batch_days

    def test_counter_conservation(self, runs):
        scalar, scalar_days, batch, batch_days = runs
        for scenario, days in ((scalar, scalar_days), (batch, batch_days)):
            c = scenario.counters
            assert (c.nta + c.ntb + c.ntc + c.live_dropped + c.unrouted
                    == sum(days))

    def test_rx_accounting_matches_dispatch(self, runs):
        _, _, batch, _ = runs
        gateways_rx = sum(g.rx_count
                          for g in batch.telescope.gateways.values())
        honeypot_rx = batch.telescope.twinklenet.rx_count + gateways_rx
        # Every NT-A packet is captured; the honeypots see the honeyprefix
        # share of them (the rest is control space).
        assert len(batch.telescope.capturer) == batch.counters.nta
        assert honeypot_rx <= batch.counters.nta

    def test_capture_sizes_close_across_paths(self, runs):
        """Contents differ (independent draws) but volumes are tied by the
        shared count stream, so telescope totals stay within a few percent."""
        scalar, _, batch, _ = runs
        for a, b in (
            (scalar.telescope.capturer, batch.telescope.capturer),
            (scalar.ntc_capturer, batch.ntc_capturer),
        ):
            hi = max(len(a), len(b))
            if hi:
                assert abs(len(a) - len(b)) / hi < 0.1


class TestBatchDeterminism:
    def test_same_seed_identical_records_all_telescopes(self, runs):
        _, _, batch, _ = runs
        again, _ = _run(use_batch=True)
        for cap_a, cap_b in (
            (batch.telescope.capturer, again.telescope.capturer),
            (batch.ntb_capturer, again.ntb_capturer),
            (batch.ntc_capturer, again.ntc_capturer),
        ):
            ra, rb = cap_a.to_records(), cap_b.to_records()
            assert len(ra) == len(rb)
            for column in ("ts", "src_hi", "src_lo", "dst_hi", "dst_lo",
                           "proto", "sport", "dport"):
                assert np.array_equal(getattr(ra, column),
                                      getattr(rb, column)), column

    def test_different_seed_differs(self, runs):
        _, _, batch, _ = runs
        other, _ = _run(use_batch=True, seed=20)
        ra = batch.telescope.capturer.to_records()
        rb = other.telescope.capturer.to_records()
        assert (len(ra) != len(rb)
                or not np.array_equal(ra.ts, rb.ts))


class TestMarginals:
    def test_protocol_marginals_match(self, runs):
        scalar, _, batch, _ = runs
        ra = scalar.telescope.capturer.to_records()
        rb = batch.telescope.capturer.to_records()
        for proto in np.union1d(np.unique(ra.proto), np.unique(rb.proto)):
            fa = float((ra.proto == proto).mean())
            fb = float((rb.proto == proto).mean())
            assert abs(fa - fb) < 0.05

    def test_hyper_specific_per_length_counts_identical(self, runs):
        """Fig 10's marginal is *exact* across paths: hyper-specific
        sessions draw their Poisson counts from the shared count stream
        and target only addresses inside the announced prefix, so the
        per-prefix-length capture counts match packet for packet.  This
        is the regression guard for the fig10 targeting path — a re-rolled
        decision stream or a batch sampler that leaks destinations outside
        the announced prefix shows up here before it shows up in the
        pinned results."""
        scalar, _, batch, _ = runs
        ra = scalar.telescope.capturer.to_records()
        rb = batch.telescope.capturer.to_records()
        counts = {}
        for length in range(49, 65):
            name = f"H_Specific/{length}"
            assert name in scalar.honeyprefixes, name
            prefix = scalar.honeyprefixes[name].prefix
            counts[length] = (
                int(np.count_nonzero(ra.mask_dst_in(prefix))),
                int(np.count_nonzero(rb.mask_dst_in(prefix))),
            )
        assert {k: a for k, (a, _) in counts.items()} \
            == {k: b for k, (_, b) in counts.items()}
        # The window past specific_start_day is long enough that every
        # length actually received traffic — an all-zero marginal would
        # pass the equality above while testing nothing.
        assert all(a > 0 for a, _ in counts.values())

    def test_source_48_concentration_matches(self, runs):
        """Fig 9's shape survives the fast path: the share of packets from
        the busiest /48 source prefix is path-independent."""
        scalar, _, batch, _ = runs

        def top_share(records):
            keys = (records.src_hi >> np.uint64(16)).astype(np.uint64)
            _, counts = np.unique(keys, return_counts=True)
            return counts.max() / counts.sum()

        ra = scalar.telescope.capturer.to_records()
        rb = batch.telescope.capturer.to_records()
        assert abs(top_share(ra) - top_share(rb)) < 0.1
