"""Tests for the CDN vantage model."""

import numpy as np
import pytest

from repro.analysis.scandetect import detect_scans
from repro.sim.cdn import CdnVantage, TABLE6_ARCHETYPES


@pytest.fixture(scope="module")
def vantage():
    return CdnVantage(rng=0, n_weeks=52)


def test_archetype_shares_sum_below_one():
    assert sum(row[3] for row in TABLE6_ARCHETYPES) < 1.0


def test_weekly_packets_grow(vantage):
    totals, top = vantage.weekly_packets()
    assert len(totals) == 52
    assert np.mean(totals[-8:]) > np.mean(totals[:8]) * 5
    assert np.all(top <= totals)


def test_sources_grow(vantage):
    for level in (128, 64, 48):
        series = vantage.weekly_sources(level)
        assert np.mean(series[-8:]) > np.mean(series[:8])


def test_source_hierarchy(vantage):
    """/128 counts dominate /64 counts dominate /48 counts."""
    s128 = vantage.weekly_sources(128)
    s64 = vantage.weekly_sources(64)
    s48 = vantage.weekly_sources(48)
    assert np.all(s64 >= s48)
    assert s128.sum() > s64.sum()


def test_weekly_ases_grow(vantage):
    ases = vantage.weekly_ases()
    assert ases[-1] > ases[0]


def test_top_as_table(vantage):
    rows = vantage.top_as_table(20)
    assert len(rows) == 20
    shares = [r["share"] for r in rows]
    assert shares == sorted(shares, reverse=True)
    assert abs(sum(shares)) <= 1.0
    assert all("as_type" in r and "country" in r for r in rows)


def test_early_dominance(vantage):
    totals, top = vantage.weekly_packets()
    early_share = top[0] / totals[0]
    late_share = top[-1] / totals[-1]
    assert early_share > late_share


def test_events_cached(vantage):
    assert vantage.events() is vantage.events()


def test_sample_packets_feed_scan_detection():
    vantage = CdnVantage(rng=1, n_weeks=10, volume_scale=1e-4)
    records = vantage.sample_packets(week=5, max_packets=20_000)
    assert len(records) > 0
    # The materialized week runs through the real scan-detection pipeline.
    events = detect_scans(records, source_length=32, min_targets=50)
    assert len(events) > 0


def test_sample_packets_cap():
    vantage = CdnVantage(rng=1, n_weeks=10)
    records = vantage.sample_packets(week=5, max_packets=5_000)
    assert len(records) <= 5_000 * 1.2
