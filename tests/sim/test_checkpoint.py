"""Checkpoint/resume equivalence: a run killed mid-horizon and resumed
must be byte-identical — journal, capture records, counters, ground
truth — to one that ran uninterrupted.

The kill is simulated with ``run_scenario(abort_after_day=...)``, which
raises :class:`SimulationAborted` at the same point a real SIGKILL
between day windows would land: the last cadence checkpoint is on disk,
nothing after it is.  The uninterrupted baseline also runs *with*
checkpointing enabled so both journals carry the same ``checkpoint``
records.
"""

import io

import numpy as np
import pytest

from repro.exec.freeze import load_checkpoint
from repro.obs import Journal, use_journal
from repro.sim import ScenarioConfig, SimulationAborted, run_scenario

DAYS = 12
CADENCE = 4

COLUMNS = ("ts", "src_hi", "src_lo", "dst_hi", "dst_lo",
           "proto", "sport", "dport")


def _config():
    return ScenarioConfig(seed=19, duration_days=DAYS, volume_scale=1e-4,
                          n_tail=20, phase1_day=2, phase2_day=4,
                          phase3_day=6, specific_start_day=7,
                          withdraw_after_days=5)


def _run(checkpoint_dir, **kwargs):
    """One journaled run; returns (result, journal text)."""
    buffer = io.StringIO()
    with use_journal(Journal(buffer)):
        result = run_scenario(_config(), checkpoint_dir=checkpoint_dir,
                              checkpoint_every=CADENCE, **kwargs)
    return result, buffer.getvalue()


def _assert_identical(a, b):
    for name in ("nta", "ntb", "ntc"):
        ra, rb = getattr(a, name), getattr(b, name)
        assert len(ra) == len(rb), name
        for column in COLUMNS:
            assert np.array_equal(getattr(ra, column),
                                  getattr(rb, column)), (name, column)
    for name, ta in a.truth.items():
        tb = b.truth[name]
        assert np.array_equal(ta.origin, tb.origin), name
        assert np.array_equal(ta.ts, tb.ts), name
    ca, cb = a.scenario.counters, b.scenario.counters
    assert (ca.nta, ca.ntb, ca.ntc, ca.live_dropped, ca.unrouted) \
        == (cb.nta, cb.ntb, cb.ntc, cb.live_dropped, cb.unrouted)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Uninterrupted run with checkpointing on — the golden bytes."""
    return _run(tmp_path_factory.mktemp("ckpt-base"))


class TestAbort:
    def test_abort_raises_after_the_named_day(self, tmp_path):
        with pytest.raises(SimulationAborted):
            _run(tmp_path, abort_after_day=5)

    def test_abort_leaves_the_cadence_checkpoint(self, tmp_path):
        with pytest.raises(SimulationAborted):
            _run(tmp_path, abort_after_day=5)
        checkpoint = load_checkpoint(tmp_path, _config())
        assert checkpoint is not None
        # day 5 completed, so the last cadence boundary <= 6 is day 4.
        assert checkpoint.next_day == CADENCE
        assert checkpoint.journal_records[0][0] == "run_manifest"
        assert checkpoint.journal_records[-1][0] == "checkpoint"


class TestResumeSerial:
    def test_resumed_equals_uninterrupted(self, baseline, tmp_path):
        base_result, base_journal = baseline
        with pytest.raises(SimulationAborted):
            _run(tmp_path, abort_after_day=5)
        resumed, journal = _run(tmp_path, resume=True)
        _assert_identical(base_result, resumed)
        assert journal == base_journal

    def test_resume_without_checkpoint_runs_fresh(self, baseline, tmp_path):
        base_result, base_journal = baseline
        result, journal = _run(tmp_path, resume=True)
        _assert_identical(base_result, result)
        assert journal == base_journal

    def test_stale_checkpoint_is_ignored(self, baseline, tmp_path):
        """A checkpoint for a *different* config must not be loaded."""
        base_result, base_journal = baseline
        other = ScenarioConfig(seed=23, duration_days=DAYS,
                               volume_scale=1e-4, n_tail=20)
        buffer = io.StringIO()
        with use_journal(Journal(buffer)):
            with pytest.raises(SimulationAborted):
                run_scenario(other, checkpoint_dir=tmp_path,
                             checkpoint_every=CADENCE, abort_after_day=5)
        assert load_checkpoint(tmp_path, _config()) is None
        result, journal = _run(tmp_path, resume=True)
        _assert_identical(base_result, result)
        assert journal == base_journal


class TestResumeSharded:
    def test_sharded_abort_resume_equals_uninterrupted(self, baseline,
                                                       tmp_path):
        base_result, base_journal = baseline
        with pytest.raises(SimulationAborted):
            _run(tmp_path, jobs=2, abort_after_day=5)
        resumed, journal = _run(tmp_path, jobs=2, resume=True)
        _assert_identical(base_result, resumed)
        assert journal == base_journal

    def test_cross_mode_resume(self, baseline, tmp_path):
        """A checkpoint written by a sharded run resumes serially (and the
        bytes still match): checkpoints carry no execution-mode state."""
        base_result, base_journal = baseline
        with pytest.raises(SimulationAborted):
            _run(tmp_path, jobs=2, abort_after_day=5)
        resumed, journal = _run(tmp_path, resume=True)
        _assert_identical(base_result, resumed)
        assert journal == base_journal
