"""Concurrency and lifecycle tests for the transport-agnostic service core.

The dedupe contract under test is the acceptance criterion: N clients
posting one config concurrently produce **exactly one** underlying run —
one ``run_end`` in the journal, ``scenario.cache.stores == 1`` in the
merged telemetry — and every client reads byte-identical results.
"""

import threading

import pytest

from repro.exec.cache import ScenarioCache
from repro.obs import read_journal
from repro.service import (
    AdmissionFull,
    ResultUnavailable,
    ScenarioService,
    ServiceClosed,
    UnknownRun,
)
from repro.sim import ScenarioConfig

from tests.service.conftest import TINY, assert_results_identical

CLIENTS = 16


def _submit_concurrently(service, configs):
    """Submit each config from its own thread through one barrier, so all
    POSTs genuinely race; returns [(run, outcome), ...] in thread order."""
    barrier = threading.Barrier(len(configs))
    outcomes = [None] * len(configs)

    def post(i, config):
        barrier.wait()
        try:
            outcomes[i] = service.submit(config)
        except Exception as error:  # noqa: BLE001 — surfaced by the test
            outcomes[i] = error

    threads = [threading.Thread(target=post, args=(i, c))
               for i, c in enumerate(configs)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes


class TestDedupe:
    def test_16_concurrent_identical_posts_run_exactly_once(
            self, tmp_path, tiny_direct):
        with ScenarioService(tmp_path / "cache", jobs=2) as service:
            outcomes = _submit_concurrently(service, [TINY] * CLIENTS)
            by_kind = sorted(outcome for _, outcome in outcomes)
            assert by_kind.count("created") == 1
            assert by_kind.count("deduped") == CLIENTS - 1

            run_ids = {run.run_id for run, _ in outcomes}
            assert len(run_ids) == 1  # every client shares the run
            run_id = run_ids.pop()
            run = service.wait(run_id, timeout=120)
            assert run.status == "done"

            # Exactly one underlying execution: one run_end in the
            # journal, one cache store in the merged worker telemetry.
            records = read_journal(run.journal_path)
            assert sum(r["type"] == "run_end" for r in records) == 1
            assert sum(r["type"] == "run_manifest" for r in records) == 1
            counters = service.metrics_snapshot()["counters"]
            assert counters["scenario.cache.stores"] == 1
            assert counters["service.cold_runs"] == 1
            assert counters["service.deduped"] == CLIENTS - 1
            assert counters["service.requests"] == CLIENTS

            # Every client fetches byte-identical results — identical to
            # a direct run_scenario(config) (the cold byte-equality
            # acceptance criterion).
            cache = ScenarioCache(tmp_path / "cache")
            for _ in range(3):
                loaded = cache.load(TINY)
                assert loaded is not None
                assert_results_identical(tiny_direct, loaded)

    def test_distinct_configs_run_independently(self, tmp_path):
        other = ScenarioConfig(seed=4, duration_days=3,
                               volume_scale=1e-5, n_tail=2)
        with ScenarioService(tmp_path / "cache", jobs=2) as service:
            outcomes = _submit_concurrently(service, [TINY, other])
            assert [outcome for _, outcome in outcomes] == \
                ["created", "created"]
            runs = [run for run, _ in outcomes]
            assert runs[0].run_id != runs[1].run_id
            for run in runs:
                service.wait(run.run_id, timeout=120)
                assert run.status == "done"
                records = read_journal(run.journal_path)
                assert sum(r["type"] == "run_end" for r in records) == 1
            counters = service.metrics_snapshot()["counters"]
            assert counters["service.cold_runs"] == 2
            assert counters["scenario.cache.stores"] == 2


class TestWarmTier:
    def test_warm_config_served_straight_from_cache(self, tmp_path,
                                                    tiny_direct):
        cache_dir = tmp_path / "cache"
        with ScenarioService(cache_dir, jobs=1) as service:
            run, _ = service.submit(TINY)
            service.wait(run.run_id, timeout=120)

        # A fresh service over the same cache never simulates TINY again.
        with ScenarioService(cache_dir, jobs=1) as service:
            run, outcome = service.submit(TINY)
            assert outcome == "warm"
            assert run.status == "done"
            assert run.warm
            counters = service.metrics_snapshot()["counters"]
            assert counters["service.warm_hits"] == 1
            assert "service.cold_runs" not in counters
            # Warm byte-equality: the served entry is the same bytes.
            loaded = ScenarioCache(cache_dir).load(TINY)
            assert_results_identical(tiny_direct, loaded)

    def test_resubmit_after_completion_dedupes_in_registry(self, tmp_path):
        with ScenarioService(tmp_path / "cache", jobs=1) as service:
            run, outcome = service.submit(TINY)
            assert outcome == "created"
            service.wait(run.run_id, timeout=120)
            again, outcome = service.submit(TINY)
            assert outcome == "deduped"
            assert again is run


class TestAdmissionAndFailure:
    def test_bounded_admission_queue_rejects_overflow(self, tmp_path):
        other = ScenarioConfig(seed=5, duration_days=3,
                               volume_scale=1e-5, n_tail=2)
        with ScenarioService(tmp_path / "cache", jobs=1,
                             queue_limit=1) as service:
            run, outcome = service.submit(TINY)
            assert outcome == "created"
            with pytest.raises(AdmissionFull):
                service.submit(other)
            counters = service.metrics_snapshot()["counters"]
            assert counters["service.rejected"] == 1
            service.wait(run.run_id, timeout=120)
            # Capacity freed: the previously rejected config now admits.
            _, outcome = service.submit(other)
            assert outcome == "created"

    def test_failed_run_reports_and_allows_retry(self, tmp_path):
        broken = ScenarioConfig(seed=3, duration_days=3, volume_scale=1e-5,
                                n_tail=2, nta_prefix="not-a-prefix")
        with ScenarioService(tmp_path / "cache", jobs=1) as service:
            run, outcome = service.submit(broken)
            assert outcome == "created"
            service.wait(run.run_id, timeout=120)
            assert run.status == "failed"
            assert run.error
            with pytest.raises(ResultUnavailable):
                service.result_entry(run.run_id)
            counters = service.metrics_snapshot()["counters"]
            assert counters["service.failed"] == 1
            # A failed run does not poison its config hash: retry admits.
            _retry, outcome = service.submit(broken)
            assert outcome == "created"

    def test_result_unavailable_while_pending(self, tmp_path):
        with ScenarioService(tmp_path / "cache", jobs=1) as service:
            run, _ = service.submit(TINY)
            if run.status == "pending":
                with pytest.raises(ResultUnavailable):
                    service.result_entry(run.run_id)
            service.wait(run.run_id, timeout=120)
            assert service.result_entry(run.run_id).is_dir()

    def test_unknown_run_raises(self, tmp_path):
        with ScenarioService(tmp_path / "cache") as service:
            with pytest.raises(UnknownRun):
                service.status("no-such-run")
            with pytest.raises(UnknownRun):
                service.result_manifest("no-such-run")


class TestShutdown:
    def test_graceful_close_drains_in_flight_runs(self, tmp_path):
        service = ScenarioService(tmp_path / "cache", jobs=1)
        run, outcome = service.submit(TINY)
        assert outcome == "created"
        service.close(drain=True)
        assert run.done_event.is_set()
        assert run.status == "done"
        assert service.result_entry(run.run_id).is_dir()

    def test_submit_after_close_refused(self, tmp_path):
        service = ScenarioService(tmp_path / "cache", jobs=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(TINY)
