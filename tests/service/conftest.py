"""Shared service-test fixtures.

``TINY`` is the service tests' canonical workload: small enough that a
cold run completes in about a second, large enough that every telescope
captures packets (so byte-equality checks compare non-trivial arrays).
"""

import pytest

from repro.sim import ScenarioConfig, run_scenario

TINY = ScenarioConfig(seed=3, duration_days=3, volume_scale=1e-5, n_tail=2)

#: The columnar record columns compared byte-for-byte.
COLUMNS = ("ts", "src_hi", "src_lo", "dst_hi", "dst_lo",
           "proto", "sport", "dport")


@pytest.fixture(scope="session")
def tiny_direct():
    """The ground truth for byte-equality: a direct in-process run."""
    return run_scenario(TINY)


def assert_results_identical(a, b):
    """Every record column, truth sidecar, and count must match exactly."""
    import numpy as np

    for name in ("nta", "ntb", "ntc"):
        ra, rb = getattr(a, name), getattr(b, name)
        assert len(ra) == len(rb), name
        for column in COLUMNS:
            ca, cb = getattr(ra, column), getattr(rb, column)
            assert ca.dtype == cb.dtype, (name, column)
            assert np.array_equal(ca, cb), (name, column)
    assert set(a.truth) == set(b.truth)
    for name, ta in a.truth.items():
        tb = b.truth[name]
        assert np.array_equal(ta.origin, tb.origin), name
        assert np.array_equal(ta.ts, tb.ts), name
