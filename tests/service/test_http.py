"""HTTP-layer tests: a real TCP server, real concurrent clients.

The end-to-end acceptance path lives here: POST a config over HTTP from
many threads at once, stream progress as SSE, download the artifacts,
and verify the reconstructed result is byte-identical to a direct
``run_scenario`` — cold and warm.
"""

import threading

import pytest

from repro.service import (
    ScenarioServer,
    ScenarioService,
    ServiceClient,
    ServiceClientError,
)

from tests.service.conftest import TINY, assert_results_identical

HTTP_CLIENTS = 16


@pytest.fixture()
def server(tmp_path):
    srv = ScenarioServer(
        ScenarioService(tmp_path / "cache", jobs=2), port=0).start()
    try:
        yield srv
    finally:
        srv.stop()


@pytest.fixture()
def client(server):
    return ServiceClient("127.0.0.1", server.port)


class TestLifecycle:
    def test_cold_run_end_to_end_byte_equality(self, server, client,
                                               tmp_path, tiny_direct):
        assert client.healthz()

        # 16 concurrent HTTP POSTs of the same config → one run.
        barrier = threading.Barrier(HTTP_CLIENTS)
        views = [None] * HTTP_CLIENTS

        def post(i):
            barrier.wait()
            views[i] = client.submit(TINY)

        threads = [threading.Thread(target=post, args=(i,))
                   for i in range(HTTP_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        run_ids = {view["run_id"] for view in views}
        assert len(run_ids) == 1
        outcomes = sorted(view["outcome"] for view in views)
        assert outcomes.count("created") == 1
        assert outcomes.count("deduped") == HTTP_CLIENTS - 1

        run_id = run_ids.pop()
        done = client.wait(run_id, timeout=120)
        assert done["state"] == "done"
        assert done["packets"] > 0

        # Progress stream: manifest first, daily records, the run's end,
        # and the trailing cache_store — the full journal, in order.
        records = list(client.stream_progress(run_id))
        types = [record["type"] for record in records]
        assert types[0] == "run_manifest"
        assert types.count("day") == TINY.duration_days
        assert types.count("run_end") == 1
        assert types[-1] == "cache_store"
        assert records[0]["config_hash"] == done["config_hash"]

        # Byte-equality, cold: download + client-side verification.
        fetched = client.fetch_result(run_id, TINY, tmp_path / "dl")
        assert_results_identical(tiny_direct, fetched)

        counters = client.metrics()["counters"]
        assert counters["scenario.cache.stores"] == 1
        assert counters["service.requests"] == HTTP_CLIENTS

    def test_warm_post_served_from_cache(self, tmp_path, tiny_direct):
        cache_dir = tmp_path / "cache"
        with ScenarioService(cache_dir, jobs=1) as service:
            run, _ = service.submit(TINY)
            service.wait(run.run_id, timeout=120)

        warm_server = ScenarioServer(
            ScenarioService(cache_dir, jobs=1), port=0).start()
        try:
            warm_client = ServiceClient("127.0.0.1", warm_server.port)
            view = warm_client.submit(TINY)
            assert view["outcome"] == "warm"
            assert view["state"] == "done"
            fetched = warm_client.fetch_result(
                view["run_id"], TINY, tmp_path / "dl-warm")
            assert_results_identical(tiny_direct, fetched)
            counters = warm_client.metrics()["counters"]
            assert counters["service.warm_hits"] == 1
        finally:
            warm_server.stop()

    def test_pin_roundtrip(self, server, client):
        view = client.submit(TINY)
        run_id = view["run_id"]
        client.wait(run_id, timeout=120)
        client.pin(run_id)
        assert run_id in server.service.cache.pinned()
        client.unpin(run_id)
        assert run_id not in server.service.cache.pinned()

    def test_ops_surfaces(self, server, client):
        view = client.submit(TINY)
        client.wait(view["run_id"], timeout=120)
        snapshot = client.metrics()
        assert "counters" in snapshot
        assert snapshot["counters"]["service.requests"] >= 1
        spans = client.traces()
        assert any(span.get("name") == "service.submit" for span in spans)


class TestErrors:
    def test_unknown_run_is_404(self, client):
        with pytest.raises(ServiceClientError) as info:
            client.status("no-such-run")
        assert info.value.status == 404
        with pytest.raises(ServiceClientError) as info:
            client.result_manifest("no-such-run")
        assert info.value.status == 404
        with pytest.raises(ServiceClientError) as info:
            list(client.stream_progress("no-such-run"))
        assert info.value.status == 404

    def test_unknown_config_field_is_400(self, client):
        with pytest.raises(ServiceClientError) as info:
            client.submit({"seed": 1, "no_such_knob": True})
        assert info.value.status == 400
        assert "no_such_knob" in str(info.value)

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceClientError) as info:
            client._json("GET", "/nope")
        assert info.value.status == 404

    def test_unknown_artifact_is_404(self, client):
        view = client.submit(TINY)
        client.wait(view["run_id"], timeout=120)
        with pytest.raises(ServiceClientError) as info:
            client._request(
                "GET", f"/runs/{view['run_id']}/result/evil.npz")
        assert info.value.status == 404


class TestObservatory:
    """The observatory surfaces: day files, index, and the live SSE tail."""

    def test_unconfigured_observatory_is_404(self, client):
        for probe in (lambda: client.observatory_day(0),
                      lambda: client.observatory_index(),
                      lambda: list(client.stream_observatory())):
            with pytest.raises(ServiceClientError) as info:
                probe()
            assert info.value.status == 404

    def test_live_stream_concatenates_to_day_files(self, tmp_path):
        """Acceptance: SSE over a *live* observatory run yields exactly
        the records the on-disk day files hold afterwards."""
        import threading

        from repro.observatory import read_observations
        from repro.sim import run_scenario

        data = tmp_path / "data"
        server = ScenarioServer(
            ScenarioService(tmp_path / "cache", observatory_dir=data),
            port=0).start()
        try:
            client = ServiceClient("127.0.0.1", server.port)
            runner = threading.Thread(
                target=run_scenario, args=(TINY,),
                kwargs={"stream_analysis": True, "observe_dir": data},
            )
            runner.start()
            try:
                # Attached before/while the run writes: the tail follows
                # the live observations.jsonl and ends at the marker.
                streamed = list(client.stream_observatory())
            finally:
                runner.join(timeout=120)
            assert streamed[-1]["type"] == "observatory_end"
            observers = [r for r in streamed if r["type"] == "observer"]
            assert observers == read_observations(data)
            assert [r["day"] for r in observers] \
                == list(range(TINY.duration_days))

            # The per-day and index endpoints agree with the stream.
            assert client.observatory_day(0) == observers[0]
            index = client.observatory_index()
            assert [e["day"] for e in index] \
                == list(range(TINY.duration_days))
            with pytest.raises(ServiceClientError) as info:
                client.observatory_day(TINY.duration_days)
            assert info.value.status == 404
            with pytest.raises(ServiceClientError) as info:
                client.observatory_day("latest")
            assert info.value.status == 400
        finally:
            server.stop()
