"""Tests for repro._util, the wordlist, and the CLI."""

import numpy as np
import pytest

from repro._util import (
    DAY,
    WEEK,
    check_nonnegative,
    check_positive,
    check_probability,
    day_of,
    make_rng,
    spawn_rngs,
    week_of,
    weighted_choice,
)
from repro.__main__ import main
from repro.core.wordlists import COMMON_SUBDOMAINS_HEAD, common_subdomains


class TestRng:
    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_seed_deterministic(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_spawn_independent(self):
        rng = make_rng(0)
        a, b = spawn_rngs(rng, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(make_rng(0), -1)


class TestTimeHelpers:
    def test_day_of(self):
        assert day_of(0.0) == 0
        assert day_of(DAY - 1) == 0
        assert day_of(DAY) == 1

    def test_week_of(self):
        assert week_of(WEEK + 1) == 1


class TestValidators:
    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0) == 0
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_positive(self):
        assert check_positive("x", 1) == 1
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_probability(self):
        assert check_probability("x", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("x", 1.5)

    def test_weighted_choice(self):
        rng = make_rng(0)
        assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.0])


class TestWordlist:
    def test_default_count(self):
        names = common_subdomains()
        assert len(names) == 374
        assert len(set(names)) == 374

    def test_head_is_real_names(self):
        assert "www" in COMMON_SUBDOMAINS_HEAD
        assert "mail" in COMMON_SUBDOMAINS_HEAD
        names = common_subdomains(5)
        assert names == list(COMMON_SUBDOMAINS_HEAD[:5])

    def test_synthetic_fill(self):
        names = common_subdomains(400)
        assert len(names) == 400
        assert names[-1].startswith("svc")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            common_subdomains(-1)

    def test_all_valid_dns_labels(self):
        from repro.dns.records import validate_name

        for name in common_subdomains():
            validate_name(f"{name}.example.com")


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig11" in out

    def test_standalone_experiment(self, capsys):
        assert main(["experiment", "table2", "table7"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Twinklenet" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "bogus"]) == 2

    def test_cdn_experiment(self, capsys):
        assert main(["experiment", "fig13"]) == 0
        assert "Fig 13" in capsys.readouterr().out

    def test_metrics_snapshot_printed(self, capsys):
        assert main(["experiment", "table2", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "== metrics snapshot ==" in out
        assert "experiment.table2" in out

    def test_metrics_json_written(self, capsys, tmp_path):
        import json

        from repro.obs import NULL_REGISTRY, get_registry

        path = tmp_path / "metrics.json"
        assert main(["experiment", "table2", f"--metrics={path}"]) == 0
        snapshot = json.loads(path.read_text())
        assert "experiment.table2" in snapshot["timings"]
        # the CLI must restore the null registry after the run.
        assert get_registry() is NULL_REGISTRY

    def test_metrics_trace_journal_compose(self, capsys, tmp_path):
        """--metrics, --trace, and --journal all work in one invocation."""
        import json

        from repro.obs import (
            NULL_JOURNAL,
            NULL_REGISTRY,
            NULL_TRACER,
            get_journal,
            get_registry,
            get_tracer,
            load_manifest,
            read_journal,
        )

        trace_path = tmp_path / "trace.json"
        journal_path = tmp_path / "journal.jsonl"
        assert main([
            "run", "--days", "3", "--scale", "1e-5", "--tail", "2",
            "--metrics", f"--trace={trace_path}",
            f"--journal={journal_path}",
        ]) == 0
        out = capsys.readouterr().out
        # All three layers reported.
        assert "== metrics snapshot ==" in out
        assert "== trace self-time by stage ==" in out
        assert "scenario.run_day" in out
        # The trace file is Chrome-trace-viewer-loadable JSON.
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        names = {e["name"] for e in trace["traceEvents"]}
        assert "run_scenario" in names and "scenario.run_day" in names
        # The journal opens with a manifest and closes with run_end.
        records = read_journal(journal_path)
        assert records[0]["type"] == "run_manifest"
        assert records[-1]["type"] == "run_end"
        assert load_manifest(journal_path).config["duration_days"] == 3
        # The CLI must restore all three null layers after the run.
        assert get_registry() is NULL_REGISTRY
        assert get_tracer() is NULL_TRACER
        assert get_journal() is NULL_JOURNAL

    def test_trace_without_file_prints_table(self, capsys):
        assert main(["experiment", "table2", "--trace"]) == 0
        assert "== trace" in capsys.readouterr().out
