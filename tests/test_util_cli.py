"""Tests for repro._util, the wordlist, and the CLI."""

import numpy as np
import pytest

from repro._util import (
    DAY,
    WEEK,
    check_nonnegative,
    check_positive,
    check_probability,
    day_of,
    make_rng,
    spawn_rngs,
    week_of,
    weighted_choice,
)
from repro.__main__ import main
from repro.core.wordlists import COMMON_SUBDOMAINS_HEAD, common_subdomains


class TestRng:
    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_seed_deterministic(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_spawn_independent(self):
        rng = make_rng(0)
        a, b = spawn_rngs(rng, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(make_rng(0), -1)


class TestTimeHelpers:
    def test_day_of(self):
        assert day_of(0.0) == 0
        assert day_of(DAY - 1) == 0
        assert day_of(DAY) == 1

    def test_week_of(self):
        assert week_of(WEEK + 1) == 1


class TestValidators:
    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0) == 0
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_positive(self):
        assert check_positive("x", 1) == 1
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_probability(self):
        assert check_probability("x", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("x", 1.5)

    def test_weighted_choice(self):
        rng = make_rng(0)
        assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.0])


class TestWordlist:
    def test_default_count(self):
        names = common_subdomains()
        assert len(names) == 374
        assert len(set(names)) == 374

    def test_head_is_real_names(self):
        assert "www" in COMMON_SUBDOMAINS_HEAD
        assert "mail" in COMMON_SUBDOMAINS_HEAD
        names = common_subdomains(5)
        assert names == list(COMMON_SUBDOMAINS_HEAD[:5])

    def test_synthetic_fill(self):
        names = common_subdomains(400)
        assert len(names) == 400
        assert names[-1].startswith("svc")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            common_subdomains(-1)

    def test_all_valid_dns_labels(self):
        from repro.dns.records import validate_name

        for name in common_subdomains():
            validate_name(f"{name}.example.com")


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig11" in out

    def test_standalone_experiment(self, capsys):
        assert main(["experiment", "table2", "table7"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Twinklenet" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "bogus"]) == 2

    def test_cdn_experiment(self, capsys):
        assert main(["experiment", "fig13"]) == 0
        assert "Fig 13" in capsys.readouterr().out

    def test_metrics_snapshot_printed(self, capsys):
        assert main(["experiment", "table2", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "== metrics snapshot ==" in out
        assert "experiment.table2" in out

    def test_metrics_json_written(self, capsys, tmp_path):
        import json

        from repro.obs import NULL_REGISTRY, get_registry

        path = tmp_path / "metrics.json"
        assert main(["experiment", "table2", f"--metrics={path}"]) == 0
        snapshot = json.loads(path.read_text())
        assert "experiment.table2" in snapshot["timings"]
        # the CLI must restore the null registry after the run.
        assert get_registry() is NULL_REGISTRY

    def test_metrics_trace_journal_compose(self, capsys, tmp_path):
        """--metrics, --trace, and --journal all work in one invocation."""
        import json

        from repro.obs import (
            NULL_JOURNAL,
            NULL_REGISTRY,
            NULL_TRACER,
            get_journal,
            get_registry,
            get_tracer,
            load_manifest,
            read_journal,
        )

        trace_path = tmp_path / "trace.json"
        journal_path = tmp_path / "journal.jsonl"
        assert main([
            "run", "--days", "3", "--scale", "1e-5", "--tail", "2",
            "--metrics", f"--trace={trace_path}",
            f"--journal={journal_path}",
        ]) == 0
        out = capsys.readouterr().out
        # All three layers reported.
        assert "== metrics snapshot ==" in out
        assert "== trace self-time by stage ==" in out
        assert "scenario.run_day" in out
        # The trace file is Chrome-trace-viewer-loadable JSON.
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        names = {e["name"] for e in trace["traceEvents"]}
        assert "run_scenario" in names and "scenario.run_day" in names
        # The journal opens with a manifest and closes with run_end.
        records = read_journal(journal_path)
        assert records[0]["type"] == "run_manifest"
        assert records[-1]["type"] == "run_end"
        assert load_manifest(journal_path).config["duration_days"] == 3
        # The CLI must restore all three null layers after the run.
        assert get_registry() is NULL_REGISTRY
        assert get_tracer() is NULL_TRACER
        assert get_journal() is NULL_JOURNAL

    def test_trace_without_file_prints_table(self, capsys):
        assert main(["experiment", "table2", "--trace"]) == 0
        assert "== trace" in capsys.readouterr().out


class TestCliListJson:
    def test_list_json_structure(self, capsys):
        import json

        from repro.experiments import EXPERIMENTS
        from repro.experiments.report import JOBS_AWARE, STREAM_ELIGIBLE

        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["id"] for entry in payload] == list(EXPERIMENTS)
        for entry in payload:
            assert set(entry) == {"id", "standalone", "jobs", "stream",
                                  "description"}
            assert entry["jobs"] == (entry["id"] in JOBS_AWARE)
            assert entry["stream"] == (entry["id"] in STREAM_ELIGIBLE)
        assert any(entry["jobs"] for entry in payload)
        assert any(entry["stream"] for entry in payload)

    def test_list_help_documents_markers(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["list", "--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        assert "'*'" in out and "'s'" in out


class TestCliModeConflicts:
    """Every mutually-exclusive mode combo: one clean error line, exit 2."""

    CONFLICTS = [
        (["run", "--stream", "--cache"], "--stream is incompatible"),
        (["run", "--observe"], "--observe requires --stream"),
        (["run", "--spill", "--stream"], "--spill is incompatible"),
        (["run", "--spill", "--checkpoint"], "--spill is incompatible"),
        (["run", "--resume"], "--resume requires --checkpoint"),
        (["experiment", "table1", "--resume"],
         "--resume requires --checkpoint"),
        (["observe", "--cache"], "--stream is incompatible with --cache"),
    ]

    @pytest.mark.parametrize("argv,message", CONFLICTS,
                             ids=[" ".join(c[0]) for c in CONFLICTS])
    def test_conflict_refused_cleanly(self, capsys, argv, message):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # nothing ran
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1  # one line, no traceback
        assert lines[0].startswith("error: ")
        assert message in lines[0]

    def test_stream_composes_with_no_cache(self, capsys):
        """--no-cache defuses the --cache conflict instead of refusing."""
        assert main(["run", "--stream", "--cache", "--no-cache",
                     "--days", "2", "--scale", "1e-6", "--tail", "2"]) == 0
        assert "Streaming scan summary" in capsys.readouterr().out


class TestCliObserve:
    def test_observe_end_to_end(self, capsys, tmp_path):
        import json

        data = tmp_path / "data"
        report_path = tmp_path / "drift.json"
        assert main(["observe", "--days", "3", "--scale", "1e-5",
                     "--tail", "2", "--data", str(data),
                     "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "Observatory drift report" in out
        assert sorted(p.name for p in data.glob("observer-*.json")) == [
            "observer-00000.json", "observer-00001.json",
            "observer-00002.json"]
        report = json.loads(report_path.read_text())
        assert report["days"] == [0, 1, 2]

        # --summary-only re-renders from the same day files, run-free.
        assert main(["observe", "--summary-only", "--data", str(data)]) == 0
        assert "Observatory drift report" in capsys.readouterr().out

    def test_summary_only_without_data_is_clean_error(self, capsys,
                                                      tmp_path):
        missing = tmp_path / "never-written"
        assert main(["observe", "--summary-only",
                     "--data", str(missing)]) == 2
        err = capsys.readouterr().err.strip()
        assert err == f"error: no observer day files in {missing}"

    def test_run_observe_prints_summary(self, capsys, tmp_path):
        data = tmp_path / "data"
        assert main(["run", "--stream", f"--observe={data}",
                     "--days", "2", "--scale", "1e-6", "--tail", "2"]) == 0
        captured = capsys.readouterr()
        assert "Streaming scan summary" in captured.out
        assert "observatory: 2 day files" in captured.err
